package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scale"
	"scale/internal/fault"
	"scale/internal/graph"
	"scale/internal/tensor"
)

// errWorkerDraining marks work refused because the worker is shutting down.
var errWorkerDraining = errors.New("shard: worker draining")

// WorkerConfig parameterizes a Worker. Only Sim is required; zero values
// select production-reasonable defaults.
type WorkerConfig struct {
	// Sim backs every session the worker builds. Required.
	Sim *scale.Simulator
	// MaxRuns bounds concurrently loaded shard runs (default 64); overflow
	// answers 429 + Retry-After.
	MaxRuns int
	// MaxSessions bounds the session cache (default 8).
	MaxSessions int
	// RunTTL evicts runs whose front tier died mid-pass (default 2m): a
	// crashed front never finishes, so loads would otherwise leak matrices.
	RunTTL time.Duration
	// ForwardWorkers is the goroutine count per layer call (default 0 =
	// the accelerator's own sizing).
	ForwardWorkers int
	// RetryAfter is the Retry-After hint on 429/503 answers (default 1s).
	RetryAfter time.Duration
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.MaxRuns == 0 {
		c.MaxRuns = 64
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 8
	}
	if c.RunTTL == 0 {
		c.RunTTL = 2 * time.Minute
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// run is one loaded shard mid-pass: the subgraph, the global-degree table,
// and the feature matrix at the run's current layer boundary. Layer calls on
// one run serialize on mu; distinct runs execute concurrently.
type run struct {
	mu      sync.Mutex
	sess    *scale.Session
	g       *graph.Graph
	degrees []int32
	owned   []int32
	h       *tensor.Matrix
	next    int32 // next layer this run expects
	touched atomic.Int64
}

// WorkerMetrics are the worker's atomic counters, rendered on /metrics.
type WorkerMetrics struct {
	Loads           atomic.Int64
	Layers          atomic.Int64
	Finishes        atomic.Int64
	HaloRowsMerged  atomic.Int64
	RunsExpired     atomic.Int64
	Rejections      atomic.Int64
	PanicsContained atomic.Int64
}

// Worker is one shard server: it holds scale.Sessions and in-flight shard
// runs, and advances a run one model layer per /v1/shard/layer call. The
// front tier (Pool) owns partitioning and halo routing; the worker only ever
// sees local CSRs. Same drain contract as internal/serve: BeginDrain →
// http.Server.Shutdown → Close.
type Worker struct {
	cfg     WorkerConfig
	mux     *http.ServeMux
	metrics *WorkerMetrics
	start   time.Time

	mu       sync.Mutex
	sessions map[string]*scale.Session
	runs     map[uint64]*run
	draining bool
	handlers sync.WaitGroup
}

// NewWorker builds a Worker around cfg.Sim.
func NewWorker(cfg WorkerConfig) *Worker {
	w := &Worker{
		cfg:      cfg.withDefaults(),
		metrics:  &WorkerMetrics{},
		start:    time.Now(),
		sessions: make(map[string]*scale.Session),
		runs:     make(map[uint64]*run),
	}
	w.mux = http.NewServeMux()
	w.mux.HandleFunc("/v1/shard/load", w.guard(w.handleLoad))
	w.mux.HandleFunc("/v1/shard/layer", w.guard(w.handleLayer))
	w.mux.HandleFunc("/v1/shard/finish", w.guard(w.handleFinish))
	w.mux.HandleFunc("/healthz", w.handleHealthz)
	w.mux.HandleFunc("/metrics", w.handleMetrics)
	return w
}

// Handler returns the worker's HTTP handler.
func (w *Worker) Handler() http.Handler { return w.mux }

// Metrics exposes the worker's counters.
func (w *Worker) Metrics() *WorkerMetrics { return w.metrics }

// BeginDrain stops admitting new work: /healthz flips to 503 so the front
// tier's health checks route around this worker, and data-plane calls answer
// 503 + Retry-After. In-flight calls finish. Idempotent.
func (w *Worker) BeginDrain() {
	w.mu.Lock()
	w.draining = true
	w.mu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (w *Worker) Draining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

// Close completes the drain: waits for in-flight handlers and drops all runs.
func (w *Worker) Close() {
	w.BeginDrain()
	w.handlers.Wait()
	w.mu.Lock()
	w.runs = make(map[uint64]*run)
	w.mu.Unlock()
}

// LiveRuns reports the number of loaded shard runs.
func (w *Worker) LiveRuns() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.runs)
}

// shardError is the JSON error payload, shape-compatible with
// internal/serve's errorResponse so one client-side classifier serves both
// tiers.
type shardError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func (w *Worker) writeError(rw http.ResponseWriter, code int, msg, kind string) {
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		secs := int(w.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		rw.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(shardError{Error: msg, Kind: kind})
}

// writeMapped renders err with the serve tier's status mapping: contained
// panics 500, deadlines 408, drain 503, input sentinels 400.
func (w *Worker) writeMapped(rw http.ResponseWriter, err error) {
	if _, ok := fault.AsPanic(err); ok {
		w.writeError(rw, http.StatusInternalServerError, err.Error(), "panic")
		return
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		w.writeError(rw, http.StatusRequestTimeout, err.Error(), "timeout")
	case errors.Is(err, errWorkerDraining):
		w.writeError(rw, http.StatusServiceUnavailable, err.Error(), "draining")
	case fault.IsInput(err):
		w.writeError(rw, http.StatusBadRequest, err.Error(), "bad_input")
	default:
		w.writeError(rw, http.StatusInternalServerError, err.Error(), "internal")
	}
}

// guard wraps a data-plane endpoint with method/drain admission and a panic
// barrier — a panicking layer call answers 500, the worker process survives.
func (w *Worker) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.writeError(rw, http.StatusMethodNotAllowed, "POST required", "usage")
			return
		}
		w.mu.Lock()
		if w.draining {
			w.mu.Unlock()
			w.writeMapped(rw, errWorkerDraining)
			return
		}
		w.handlers.Add(1)
		w.mu.Unlock()
		defer w.handlers.Done()
		if err := fault.Safely(func() error { h(rw, r); return nil }); err != nil {
			w.metrics.PanicsContained.Add(1)
			w.writeMapped(rw, err)
		}
	}
}

// session returns the cached session for (model, dims, precision). Unlike
// the front tier the worker has no batcher per session, so the cache is a
// plain bounded map; sessions are deterministic, so evicting and rebuilding
// never changes results.
func (w *Worker) session(model string, dims []int, precision string) (*scale.Session, error) {
	key := model + "/" + precision
	for _, d := range dims {
		key += "/" + strconv.Itoa(d)
	}
	w.mu.Lock()
	if s, ok := w.sessions[key]; ok {
		w.mu.Unlock()
		return s, nil
	}
	w.mu.Unlock()
	s, err := w.cfg.Sim.NewSessionPrecision(model, dims, precision)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if cached, ok := w.sessions[key]; ok {
		return cached, nil
	}
	if len(w.sessions) >= w.cfg.MaxSessions {
		// Arbitrary-victim eviction: map iteration order. Good enough for a
		// worker that normally serves one or two session shapes.
		for k := range w.sessions {
			delete(w.sessions, k)
			break
		}
	}
	w.sessions[key] = s
	return s, nil
}

// expireLocked drops runs idle past RunTTL (front tier died mid-pass).
func (w *Worker) expireLocked(now time.Time) {
	cutoff := now.Add(-w.cfg.RunTTL).UnixNano()
	for id, r := range w.runs {
		if r.touched.Load() < cutoff {
			delete(w.runs, id)
			w.metrics.RunsExpired.Add(1)
		}
	}
}

// handleLoad serves POST /v1/shard/load: decode the subgraph, build (or hit
// the cache for) the session, materialize the feature matrix, and register
// the run at its starting layer.
func (w *Worker) handleLoad(rw http.ResponseWriter, r *http.Request) {
	q, err := DecodeLoad(r.Body)
	if err != nil {
		w.writeMapped(rw, err)
		return
	}
	if err := validateLoad(q); err != nil {
		w.writeMapped(rw, err)
		return
	}
	dims := make([]int, len(q.Dims))
	for i, d := range q.Dims {
		dims[i] = int(d)
	}
	sess, err := w.session(q.Model, dims, q.Precision)
	if err != nil {
		w.writeMapped(rw, err)
		return
	}
	n := q.NumVertices()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for _, u := range q.ColIdx[q.RowPtr[v]:q.RowPtr[v+1]] {
			b.AddEdge(int(u), v)
		}
	}
	h := tensor.NewMatrix(n, dims[q.Layer])
	copy(h.Data, q.Features)

	ru := &run{
		sess:    sess,
		g:       b.Build(fmt.Sprintf("shardrun-%d", q.ReqID)),
		degrees: q.Degrees,
		owned:   q.Owned,
		h:       h,
		next:    q.Layer,
	}
	ru.touched.Store(time.Now().UnixNano())

	w.mu.Lock()
	w.expireLocked(time.Now())
	if len(w.runs) >= w.cfg.MaxRuns {
		w.mu.Unlock()
		w.metrics.Rejections.Add(1)
		w.writeError(rw, http.StatusTooManyRequests, "run table full", "over_capacity")
		return
	}
	w.runs[q.ReqID] = ru // reload after failover overwrites the stale run
	w.mu.Unlock()
	w.metrics.Loads.Add(1)
	rw.WriteHeader(http.StatusNoContent)
}

// validateLoad checks a decoded load frame's internal consistency with typed
// input errors: the wire layer only guarantees well-formed framing.
func validateLoad(q *LoadRequest) error {
	n := q.NumVertices()
	if n <= 0 {
		return fmt.Errorf("shard: load has no vertices: %w", fault.ErrBadGraph)
	}
	if len(q.Dims) < 2 {
		return fmt.Errorf("shard: load dims chain has %d entries, need ≥2: %w", len(q.Dims), fault.ErrBadConfig)
	}
	if q.Layer < 0 || int(q.Layer) >= len(q.Dims)-1 {
		return fmt.Errorf("shard: start layer %d outside [0, %d): %w", q.Layer, len(q.Dims)-1, fault.ErrBadConfig)
	}
	for v := 0; v < n; v++ {
		if q.RowPtr[v] > q.RowPtr[v+1] {
			return fmt.Errorf("shard: row pointer not monotone at %d: %w", v, fault.ErrBadGraph)
		}
	}
	if int(q.RowPtr[n]) != len(q.ColIdx) {
		return fmt.Errorf("shard: row pointer ends at %d, %d column indices: %w", q.RowPtr[n], len(q.ColIdx), fault.ErrBadGraph)
	}
	for i, u := range q.ColIdx {
		if u < 0 || int(u) >= n {
			return fmt.Errorf("shard: column index %d = %d outside [0, %d): %w", i, u, n, fault.ErrBadGraph)
		}
	}
	for _, o := range q.Owned {
		if o < 0 || int(o) >= n {
			return fmt.Errorf("shard: owned id %d outside [0, %d): %w", o, n, fault.ErrBadGraph)
		}
	}
	if len(q.Degrees) != n {
		return fmt.Errorf("shard: %d degrees for %d vertices: %w", len(q.Degrees), n, fault.ErrBadShape)
	}
	if want := n * int(q.Dims[q.Layer]); len(q.Features) != want {
		return fmt.Errorf("shard: %d feature values, want %d: %w", len(q.Features), want, fault.ErrBadShape)
	}
	return nil
}

// handleLayer serves POST /v1/shard/layer: merge halo rows, run exactly one
// model layer over the local CSR, and return the owned output rows.
func (w *Worker) handleLayer(rw http.ResponseWriter, r *http.Request) {
	q, err := DecodeLayer(r.Body)
	if err != nil {
		w.writeMapped(rw, err)
		return
	}
	w.mu.Lock()
	ru, ok := w.runs[q.ReqID]
	w.mu.Unlock()
	if !ok {
		// Distinct kind: the front tier treats a missing run (worker
		// restarted, run expired) as grounds for a reload, not a client bug.
		w.writeError(rw, http.StatusNotFound, fmt.Sprintf("shard: run %d not loaded", q.ReqID), "no_run")
		return
	}

	ru.mu.Lock()
	defer ru.mu.Unlock()
	ru.touched.Store(time.Now().UnixNano())
	if q.Layer != ru.next {
		w.writeMapped(rw, fmt.Errorf("shard: run %d expects layer %d, got %d: %w", q.ReqID, ru.next, q.Layer, fault.ErrBadConfig))
		return
	}
	if len(q.HaloIDs) > 0 {
		if int(q.Cols) != ru.h.Cols {
			w.writeMapped(rw, fmt.Errorf("shard: halo rows are %d wide, state is %d: %w", q.Cols, ru.h.Cols, fault.ErrBadShape))
			return
		}
		for i, lid := range q.HaloIDs {
			if lid < 0 || int(lid) >= ru.h.Rows {
				w.writeMapped(rw, fmt.Errorf("shard: halo id %d outside [0, %d): %w", lid, ru.h.Rows, fault.ErrBadGraph))
				return
			}
			copy(ru.h.Row(int(lid)), q.HaloRows[i*int(q.Cols):(i+1)*int(q.Cols)])
		}
		w.metrics.HaloRowsMerged.Add(int64(len(q.HaloIDs)))
	}

	out, err := ru.sess.ForwardLayerCSR(r.Context(), int(q.Layer), ru.g, ru.h, ru.degrees, w.cfg.ForwardWorkers)
	if err != nil {
		w.writeMapped(rw, err)
		return
	}
	ru.h = out
	ru.next = q.Layer + 1
	w.metrics.Layers.Add(1)

	resp := LayerResponse{Cols: int32(out.Cols), Rows: make([]float32, 0, len(ru.owned)*out.Cols)}
	for _, lid := range ru.owned {
		resp.Rows = append(resp.Rows, out.Row(int(lid))...)
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	if err := resp.Encode(rw); err != nil {
		// Mid-body failure: the status line is gone; the client sees a
		// truncated frame and fails over. Nothing useful to write here.
		return
	}
}

// handleFinish serves POST /v1/shard/finish?req=<id>: drop the run. Finish is
// best-effort bookkeeping — RunTTL reclaims runs whose finish never arrives.
func (w *Worker) handleFinish(rw http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.URL.Query().Get("req"), 10, 64)
	if err != nil {
		w.writeMapped(rw, fmt.Errorf("shard: bad req id %q: %w", r.URL.Query().Get("req"), fault.ErrBadConfig))
		return
	}
	w.mu.Lock()
	_, ok := w.runs[id]
	delete(w.runs, id)
	w.expireLocked(time.Now())
	w.mu.Unlock()
	if ok {
		w.metrics.Finishes.Add(1)
	}
	rw.WriteHeader(http.StatusNoContent)
}

// workerHealth is the GET /healthz payload. MaxRuns rides along so the
// front tier's prober (and operators) can see headroom, not just liveness.
type workerHealth struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Runs          int     `json:"runs"`
	MaxRuns       int     `json:"max_runs"`
	Sessions      int     `json:"sessions"`
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if w.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.mu.Lock()
	runs, sessions := len(w.runs), len(w.sessions)
	w.mu.Unlock()
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(workerHealth{
		Status:        status,
		UptimeSeconds: time.Since(w.start).Seconds(),
		Runs:          runs,
		MaxRuns:       w.cfg.MaxRuns,
		Sessions:      sessions,
	})
}

func (w *Worker) handleMetrics(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m := w.metrics
	fmt.Fprintf(rw, "# TYPE scale_shard_loads_total counter\nscale_shard_loads_total %d\n", m.Loads.Load())
	fmt.Fprintf(rw, "# TYPE scale_shard_layers_total counter\nscale_shard_layers_total %d\n", m.Layers.Load())
	fmt.Fprintf(rw, "# TYPE scale_shard_finishes_total counter\nscale_shard_finishes_total %d\n", m.Finishes.Load())
	fmt.Fprintf(rw, "# TYPE scale_shard_halo_rows_merged_total counter\nscale_shard_halo_rows_merged_total %d\n", m.HaloRowsMerged.Load())
	fmt.Fprintf(rw, "# TYPE scale_shard_runs_expired_total counter\nscale_shard_runs_expired_total %d\n", m.RunsExpired.Load())
	fmt.Fprintf(rw, "# TYPE scale_shard_rejections_total counter\nscale_shard_rejections_total %d\n", m.Rejections.Load())
	fmt.Fprintf(rw, "# TYPE scale_shard_panics_contained_total counter\nscale_shard_panics_contained_total %d\n", m.PanicsContained.Load())
	fmt.Fprintf(rw, "# TYPE scale_shard_runs gauge\nscale_shard_runs %d\n", w.LiveRuns())
}
