package shard

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scale/internal/graph"
	"scale/internal/tensor"
)

// candidates must demote breaker-refused workers to the back of the failover
// order — never remove them — and keep the ring order among the healthy.
func TestCandidatesOrdering(t *testing.T) {
	pool, err := NewPool(PoolConfig{Workers: []string{"w1:1", "w2:1", "w3:1"}, Parts: 3})
	if err != nil {
		t.Fatal(err)
	}
	const key = "gcn/4/2/fp32#0"
	base := pool.candidates(key)
	if len(base) != 3 {
		t.Fatalf("candidates returned %d workers, want 3", len(base))
	}

	tripped := base[0]
	for i := 0; i < 3; i++ {
		pool.Breaker(tripped).Failure()
	}
	got := pool.candidates(key)
	if len(got) != 3 {
		t.Fatalf("tripped worker removed: candidates = %v", got)
	}
	if got[len(got)-1] != tripped {
		t.Fatalf("tripped worker %s not demoted to the back: %v", tripped, got)
	}
	if got[0] != base[1] || got[1] != base[2] {
		t.Fatalf("healthy candidates reordered: %v, want prefix %v", got, base[1:])
	}

	for _, a := range base {
		for i := 0; i < 3; i++ {
			pool.Breaker(a).Failure()
		}
	}
	if got := pool.candidates(key); len(got) != 3 {
		t.Fatalf("all-open candidates = %v, want every worker listed", got)
	}
	if pool.LiveWorkers() != 0 || !pool.Degraded() {
		t.Fatal("all-open pool must report zero live workers and degraded")
	}
}

// With every breaker open and inside its cooldown, the pool must still try
// the workers (stale breakers beat refusing outright) — and a healthy fleet
// closes the breakers again through the data plane alone.
func TestPoolAllBreakersOpenStillRuns(t *testing.T) {
	sim := newTestSim(t)
	addrs, _ := startWorkers(t, sim, 2)
	pool, err := NewPool(PoolConfig{Workers: addrs, Parts: 2, BreakerThreshold: 1, DownFor: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		pool.Breaker(a).Failure()
	}
	if !pool.Degraded() {
		t.Fatal("pool with every breaker open must report degraded")
	}

	g := graph.CommunityGraph(80, 2, 6, 3)
	spec := SessionSpec{Model: "gcn", Dims: []int{5, 3}, Precision: "fp32"}
	x := tensor.NewMatrix(g.NumVertices(), 5)
	for i := range x.Data {
		x.Data[i] = float32(i%7) * 0.4
	}
	want := unshardedReference(t, sim, spec, g, x)
	got, _, err := pool.Run(context.Background(), spec, g, x)
	if err != nil {
		t.Fatalf("all-open pool refused to try healthy workers: %v", err)
	}
	for i, v := range got.Data {
		if v != want.Data[i] {
			t.Fatalf("element %d differs: %v vs %v", i, v, want.Data[i])
		}
	}
	if pool.LiveWorkers() == 0 {
		t.Fatal("successful pass must have closed at least one breaker")
	}
}

// 429 with Retry-After is a transient: the pool retries in place on the same
// worker (honoring a capped version of the hint) instead of tripping the
// breaker or failing over.
func TestPoolTransientRetryInPlace(t *testing.T) {
	sim := newTestSim(t)
	w := NewWorker(WorkerConfig{Sim: sim})
	t.Cleanup(w.Close)
	var rejects atomic.Int32
	rejects.Store(2)
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/shard/") && rejects.Add(-1) >= 0 {
			rw.Header().Set("Retry-After", "1") // 1s hint, capped by RetryMax below
			rw.Header().Set("Content-Type", "application/json")
			rw.WriteHeader(http.StatusTooManyRequests)
			_, _ = rw.Write([]byte(`{"error":"run table full","kind":"over_capacity"}`))
			return
		}
		w.Handler().ServeHTTP(rw, r)
	}))
	t.Cleanup(srv.Close)

	pool, err := NewPool(PoolConfig{
		Workers:   []string{srv.URL},
		Parts:     1,
		RetryBase: time.Millisecond,
		RetryMax:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.CommunityGraph(60, 2, 5, 1)
	spec := SessionSpec{Model: "gcn", Dims: []int{4, 2}, Precision: "fp32"}
	x := tensor.NewMatrix(g.NumVertices(), 4)
	start := time.Now()
	if _, _, err := pool.Run(context.Background(), spec, g, x); err != nil {
		t.Fatalf("transient 429s must be retried through: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("run took %s: the 1s Retry-After hint was not capped by RetryMax", d)
	}
	m := pool.Metrics()
	if m.Retries.Load() < 2 {
		t.Fatalf("retries = %d, want ≥2 (one per 429)", m.Retries.Load())
	}
	if m.Failovers.Load() != 0 {
		t.Fatalf("failovers = %d: a transient 429 must not eject the worker", m.Failovers.Load())
	}
	if pool.Breaker(srv.URL).State() != BreakerClosed {
		t.Fatal("transient 429s must not feed the breaker")
	}
}

// Per-call deadlines derive from the request context: RequestTimeout bounds a
// hung worker for budget-less callers, and a caller's earlier deadline wins
// over a generous RequestTimeout.
func TestPoolTimeoutBudget(t *testing.T) {
	hung := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			// Drain the body so net/http starts its background read — without
			// it the server never notices the disconnect and the handler (and
			// the test server's Close) would hang forever.
			_, _ = io.Copy(io.Discard, r.Body)
			<-r.Context().Done() // hang until the client gives up
			return
		}
		rw.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(hung.Close)
	g := graph.CommunityGraph(60, 2, 5, 1)
	spec := SessionSpec{Model: "gcn", Dims: []int{4, 2}, Precision: "fp32"}
	x := tensor.NewMatrix(g.NumVertices(), 4)

	pool, err := NewPool(PoolConfig{Workers: []string{hung.URL}, Parts: 1, RequestTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, _, err := pool.Run(context.Background(), spec, g, x); err == nil {
		t.Fatal("hung worker: Run must fail")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("hung worker stalled Run for %s; RequestTimeout did not bound the call", d)
	}

	pool, err = NewPool(PoolConfig{Workers: []string{hung.URL}, Parts: 1, RequestTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start = time.Now()
	_, _, err = pool.Run(ctx, spec, g, x)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("caller deadline: err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("caller deadline ignored for %s", d)
	}
}

// The active prober trips a dead worker's breaker open without any data-plane
// traffic, and reinstates the worker when /healthz recovers.
func TestProberTripsAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && !healthy.Load() {
			rw.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		rw.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(srv.Close)

	pool, err := NewPool(PoolConfig{
		Workers:          []string{srv.URL},
		Parts:            1,
		BreakerThreshold: 2,
		DownFor:          20 * time.Millisecond,
		ProbeInterval:    10 * time.Millisecond,
		ProbeTimeout:     500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool.StartProber()
	defer pool.Close()

	waitState := func(want BreakerState, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if pool.Breaker(srv.URL).State() == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("breaker never became %s (%s)", want, what)
	}
	waitState(BreakerOpen, "unhealthy worker must trip via probes alone")
	if !pool.Degraded() {
		t.Fatal("sole worker open: pool must report degraded")
	}
	healthy.Store(true)
	waitState(BreakerClosed, "recovered worker must be reinstated via probes alone")
	if pool.Degraded() || pool.LiveWorkers() != 1 {
		t.Fatal("recovered pool must report a live worker")
	}
	if pool.Metrics().Probes.Load() == 0 {
		t.Fatal("probe counter never moved")
	}
}
