package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scale"
	"scale/internal/bench/faultinject"
)

func testSim(t testing.TB) *scale.Simulator {
	t.Helper()
	sim, err := scale.New(scale.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Sim == nil {
		cfg.Sim = testSim(t)
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// do posts body (marshalled to JSON when not a string) to path and returns
// the recorded response.
func do(t testing.TB, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case nil:
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(b); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func validInfer() inferBody {
	return inferBody{
		Model: "gin", Dims: []int{2, 3}, NumVertices: 3,
		Edges:    [][2]int{{0, 1}, {2, 1}},
		Features: [][]float32{{1, 0}, {0, 1}, {1, 1}},
	}
}

func decodeError(t testing.TB, rec *httptest.ResponseRecorder) errorResponse {
	t.Helper()
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body %q: %v", rec.Body.String(), err)
	}
	return e
}

// panicBackend injects a worker panic through the faultinject harness; the
// batcher must contain it into a 500 without killing the process.
func panicBackend(ctx context.Context, sess *scale.Session, reqs []scale.InferRequest) ([][][]float32, error) {
	plan := faultinject.Plan{0: {Kind: faultinject.Panic, Value: "injected backend panic"}}
	if err := plan.Wrap(func(int) error { return nil })(0); err != nil {
		return nil, err
	}
	return sess.InferBatch(ctx, reqs)
}

// stalledBackend blocks until the request context dies, then reports it —
// the deterministic driver for the 408 path.
func stalledBackend(ctx context.Context, sess *scale.Session, reqs []scale.InferRequest) ([][][]float32, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestStatusMapping drives every HTTP status the API can answer through
// httptest, one table row per (input, expected status, expected kind).
func TestStatusMapping(t *testing.T) {
	badEdge := validInfer()
	badEdge.Edges = [][2]int{{0, 9}}
	badShape := validInfer()
	badShape.Features = badShape.Features[:2]
	raggedRow := validInfer()
	raggedRow.Features = [][]float32{{1, 0}, {0, 1}, {1, 1, 1}}
	badModel := validInfer()
	badModel.Model = "nope"
	tooBig := validInfer()
	tooBig.NumVertices = 1 << 30

	cases := []struct {
		name     string
		cfg      Config
		method   string
		path     string
		body     any
		wantCode int
		wantKind string
	}{
		{"infer ok", Config{}, "POST", "/v1/infer", validInfer(), 200, ""},
		{"simulate ok", Config{}, "POST", "/v1/simulate", simulateBody{Model: "gcn", Dataset: "cora"}, 200, ""},
		{"simulate systolic", Config{}, "POST", "/v1/simulate", simulateBody{Model: "gcn", Dataset: "cora", Accel: "systolic"}, 200, ""},
		{"unknown accelerator (ErrBadConfig)", Config{}, "POST", "/v1/simulate", simulateBody{Model: "gcn", Dataset: "cora", Accel: "nope"}, 400, "bad_input"},
		{"infer GET", Config{}, "GET", "/v1/infer", nil, 405, "usage"},
		{"simulate GET", Config{}, "GET", "/v1/simulate", nil, 405, "usage"},
		{"bad JSON", Config{}, "POST", "/v1/infer", "{not json", 400, "bad_input"},
		{"unknown model (ErrBadConfig)", Config{}, "POST", "/v1/infer", badModel, 400, "bad_input"},
		{"edge out of range (ErrBadGraph)", Config{}, "POST", "/v1/infer", badEdge, 400, "bad_input"},
		{"missing feature rows (ErrBadShape)", Config{}, "POST", "/v1/infer", badShape, 400, "bad_input"},
		{"ragged feature row (ErrBadShape)", Config{}, "POST", "/v1/infer", raggedRow, 400, "bad_input"},
		{"vertex cap", Config{}, "POST", "/v1/infer", tooBig, 400, "bad_input"},
		{"unknown dataset", Config{}, "POST", "/v1/simulate", simulateBody{Model: "gcn", Dataset: "nope"}, 400, "bad_input"},
		{"deadline (408)", Config{Backend: stalledBackend}, "POST", "/v1/infer",
			func() inferBody { b := validInfer(); b.TimeoutMS = 20; return b }(), 408, "timeout"},
		{"injected panic (500)", Config{Backend: panicBackend}, "POST", "/v1/infer", validInfer(), 500, "panic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, tc.cfg)
			rec := do(t, s, tc.method, tc.path, tc.body)
			if rec.Code != tc.wantCode {
				t.Fatalf("code = %d (%s), want %d", rec.Code, rec.Body.String(), tc.wantCode)
			}
			if tc.wantKind != "" {
				if e := decodeError(t, rec); e.Kind != tc.wantKind {
					t.Fatalf("kind = %q (%s), want %q", e.Kind, rec.Body.String(), tc.wantKind)
				}
			}
		})
	}
}

// TestQueueFull429 pins the backpressure contract: with a single admission
// slot held by a stalled request, the next request is shed immediately with
// 429 and a Retry-After hint, and the slot-holder still completes.
func TestQueueFull429(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{
		QueueDepth: 1,
		Backend: func(ctx context.Context, sess *scale.Session, reqs []scale.InferRequest) ([][][]float32, error) {
			<-release
			return sess.InferBatch(ctx, reqs)
		},
	})
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- do(t, s, "POST", "/v1/infer", validInfer()) }()
	// Wait for the first request to hold the only slot.
	for i := 0; s.queue.inUse() == 0; i++ {
		if i > 5000 {
			t.Fatal("first request never occupied the queue")
		}
		time.Sleep(time.Millisecond)
	}
	rec := do(t, s, "POST", "/v1/infer", validInfer())
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if e := decodeError(t, rec); e.Kind != "over_capacity" {
		t.Fatalf("kind = %q", e.Kind)
	}
	if n := s.Metrics().QueueRejections.Load(); n != 1 {
		t.Fatalf("queue rejections = %d", n)
	}
	close(release)
	if rec := <-first; rec.Code != http.StatusOK {
		t.Fatalf("slot holder finished %d: %s", rec.Code, rec.Body.String())
	}
}

// TestDrain503 pins the drain contract: after BeginDrain, healthz flips to
// 503 and new API requests are refused with 503 + Retry-After, while Close
// still returns (no stuck goroutines).
func TestDrain503(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec := do(t, s, "GET", "/healthz", nil); rec.Code != 200 {
		t.Fatalf("healthz before drain = %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/infer", validInfer()); rec.Code != 200 {
		t.Fatalf("infer before drain = %d", rec.Code)
	}
	s.BeginDrain()
	if rec := do(t, s, "GET", "/healthz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d", rec.Code)
	}
	rec := do(t, s, "POST", "/v1/infer", validInfer())
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("infer during drain = %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("drain refusal must carry Retry-After")
	}
	if e := decodeError(t, rec); e.Kind != "draining" {
		t.Fatalf("kind = %q", e.Kind)
	}
	s.Close()
	s.Close() // idempotent
}

// TestPanicIsolation proves one poisoned request degrades only itself: the
// 500 lands, the process survives, and the very next request on a fresh
// server config answers 200.
func TestPanicIsolation(t *testing.T) {
	calls := 0
	s := newTestServer(t, Config{
		MaxBatch: 1,
		Backend: func(ctx context.Context, sess *scale.Session, reqs []scale.InferRequest) ([][][]float32, error) {
			calls++
			if calls == 1 {
				return panicBackend(ctx, sess, reqs)
			}
			return sess.InferBatch(ctx, reqs)
		},
	})
	if rec := do(t, s, "POST", "/v1/infer", validInfer()); rec.Code != 500 {
		t.Fatalf("poisoned request = %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/infer", validInfer()); rec.Code != 200 {
		t.Fatalf("request after contained panic = %d: %s", rec.Code, rec.Body.String())
	}
	if n := s.Metrics().PanicsContained.Load(); n != 1 {
		t.Fatalf("panics contained = %d", n)
	}
}

// TestMetricsEndpoint sanity-checks the Prometheus rendering: counters for
// the statuses just produced, the latency histogram, and session gauges.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "POST", "/v1/infer", validInfer())
	do(t, s, "POST", "/v1/infer", "{not json")
	do(t, s, "POST", "/v1/simulate", simulateBody{Model: "gcn", Dataset: "cora"})
	rec := do(t, s, "GET", "/metrics", nil)
	if rec.Code != 200 {
		t.Fatalf("metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`scale_serve_requests_total{endpoint="infer",code="200"} 1`,
		`scale_serve_requests_total{endpoint="infer",code="400"} 1`,
		`scale_serve_requests_total{endpoint="simulate",code="200"} 1`,
		`scale_serve_sessions_live 1`,
		`scale_serve_request_seconds_bucket{endpoint="infer",le="+Inf"} 2`,
		`scale_serve_request_seconds_count{endpoint="simulate"} 1`,
		`scale_serve_batches_total 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
	if s.Metrics().RequestCount("infer", 200) != 1 {
		t.Error("RequestCount introspection broken")
	}
}

// TestHealthzShape checks the health payload fields.
func TestHealthzShape(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 7})
	do(t, s, "POST", "/v1/infer", validInfer())
	rec := do(t, s, "GET", "/healthz", nil)
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Sessions != 1 || h.QueueDepth != 7 || h.QueueInUse != 0 {
		t.Fatalf("health = %+v", h)
	}
}
