package serve

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// decodeInfer unmarshals a 200 infer response.
func decodeInfer(t testing.TB, body []byte) inferResponse {
	t.Helper()
	var resp inferResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("infer body %q: %v", body, err)
	}
	return resp
}

// The precision field selects the execution tier per request: fp32 and ""
// share one cached session, int8 gets its own, and unknown values are typed
// 400s that never reach the cache.
func TestInferPrecisionSessions(t *testing.T) {
	s := newTestServer(t, Config{})
	req := validInfer()

	rec := do(t, s, "POST", "/v1/infer", req)
	if rec.Code != 200 {
		t.Fatalf("default precision: %d %s", rec.Code, rec.Body.String())
	}
	if got := decodeInfer(t, rec.Body.Bytes()).Precision; got != "fp32" {
		t.Fatalf("default precision reported %q, want fp32", got)
	}

	explicit := req
	explicit.Precision = "fp32"
	if rec := do(t, s, "POST", "/v1/infer", explicit); rec.Code != 200 {
		t.Fatalf("explicit fp32: %d %s", rec.Code, rec.Body.String())
	}
	if n := s.LiveSessions(); n != 1 {
		t.Fatalf("fp32 and \"\" should share one session, have %d", n)
	}

	quantized := req
	quantized.Precision = "int8"
	rec = do(t, s, "POST", "/v1/infer", quantized)
	if rec.Code != 200 {
		t.Fatalf("int8: %d %s", rec.Code, rec.Body.String())
	}
	if got := decodeInfer(t, rec.Body.Bytes()).Precision; got != "int8" {
		t.Fatalf("int8 precision reported %q", got)
	}
	if n := s.LiveSessions(); n != 2 {
		t.Fatalf("int8 should key its own session, have %d sessions", n)
	}

	bad := req
	bad.Precision = "fp64"
	rec = do(t, s, "POST", "/v1/infer", bad)
	if rec.Code != 400 || decodeError(t, rec).Kind != "bad_input" {
		t.Fatalf("unknown precision: %d %s", rec.Code, rec.Body.String())
	}
	if n := s.LiveSessions(); n != 2 {
		t.Fatalf("rejected precision must not create a session, have %d", n)
	}
}

// Config.DefaultPrecision applies to requests without a precision field and
// is overridable per request.
func TestInferDefaultPrecision(t *testing.T) {
	s := newTestServer(t, Config{DefaultPrecision: "int8"})
	rec := do(t, s, "POST", "/v1/infer", validInfer())
	if rec.Code != 200 {
		t.Fatalf("default int8: %d %s", rec.Code, rec.Body.String())
	}
	if got := decodeInfer(t, rec.Body.Bytes()).Precision; got != "int8" {
		t.Fatalf("server default not applied: precision %q", got)
	}
	override := validInfer()
	override.Precision = "fp32"
	rec = do(t, s, "POST", "/v1/infer", override)
	if rec.Code != 200 {
		t.Fatalf("fp32 override: %d %s", rec.Code, rec.Body.String())
	}
	if got := decodeInfer(t, rec.Body.Bytes()).Precision; got != "fp32" {
		t.Fatalf("per-request override lost: precision %q", got)
	}
}

// Quantized serving must approximate the float tier: same request, both
// precisions, small relative error. The tight per-layer bound lives in the
// core accuracy harness; this pins the end-to-end wiring (the int8 session
// really dispatches quantized kernels, yet stays close to fp32).
func TestInferInt8ApproximatesFp32(t *testing.T) {
	s := newTestServer(t, Config{})
	req := testGraph(7, 24, 4, 8)
	body := inferBody{Model: "gcn", Dims: []int{8, 16, 4}, NumVertices: req.NumVertices, Edges: req.Edges, Features: req.Features}

	rec := do(t, s, "POST", "/v1/infer", body)
	if rec.Code != 200 {
		t.Fatalf("fp32: %d %s", rec.Code, rec.Body.String())
	}
	ref := decodeInfer(t, rec.Body.Bytes()).Embeddings

	body.Precision = "int8"
	rec = do(t, s, "POST", "/v1/infer", body)
	if rec.Code != 200 {
		t.Fatalf("int8: %d %s", rec.Code, rec.Body.String())
	}
	got := decodeInfer(t, rec.Body.Bytes()).Embeddings

	var maxRef, maxDiff float64
	for v := range ref {
		for j := range ref[v] {
			if a := math.Abs(float64(ref[v][j])); a > maxRef {
				maxRef = a
			}
			if d := math.Abs(float64(ref[v][j] - got[v][j])); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 0.08*maxRef+1e-5 {
		t.Fatalf("int8 serving error %g vs max ref %g", maxDiff, maxRef)
	}
	if maxDiff == 0 {
		t.Fatal("int8 output bit-identical to fp32 — quantized path not engaged")
	}
}

// /metrics exposes per-session precision gauges (internal/quant.Plan
// footprint statistics) and drops them with the session.
func TestMetricsSessionPrecisionGauges(t *testing.T) {
	s := newTestServer(t, Config{MaxSessions: 1})
	req := validInfer()
	req.Precision = "int8"
	if rec := do(t, s, "POST", "/v1/infer", req); rec.Code != 200 {
		t.Fatalf("int8: %d %s", rec.Code, rec.Body.String())
	}
	text := do(t, s, "GET", "/metrics", nil).Body.String()
	wantComp := `scale_serve_session_quant_compression{session="gin/2/3/int8",precision="int8"} 0.25`
	wantBytes := `scale_serve_session_quant_avg_bytes{session="gin/2/3/int8",precision="int8"} 1`
	if !strings.Contains(text, wantComp) || !strings.Contains(text, wantBytes) {
		t.Fatalf("metrics missing int8 session gauges:\n%s", text)
	}

	// MaxSessions 1: an fp32 request evicts the int8 session and its gauges.
	if rec := do(t, s, "POST", "/v1/infer", validInfer()); rec.Code != 200 {
		t.Fatalf("fp32: %d %s", rec.Code, rec.Body.String())
	}
	text = do(t, s, "GET", "/metrics", nil).Body.String()
	if strings.Contains(text, `session="gin/2/3/int8"`) {
		t.Fatalf("evicted session's gauges still exposed:\n%s", text)
	}
	if !strings.Contains(text, `scale_serve_session_quant_compression{session="gin/2/3/fp32",precision="fp32"} 1`) {
		t.Fatalf("metrics missing fp32 session gauge:\n%s", text)
	}
}
