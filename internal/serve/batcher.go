package serve

import (
	"context"
	"fmt"
	"time"

	"scale"
	"scale/internal/fault"
)

// Backend executes one coalesced batch of requests against a session. The
// production backend is (*scale.Session).InferBatch; tests swap in fault-
// and latency-injecting backends to drive the 408/429/500 paths
// deterministically.
type Backend func(ctx context.Context, sess *scale.Session, reqs []scale.InferRequest) ([][][]float32, error)

// pending is one admitted infer request waiting for its batch to execute.
// done is buffered so the batcher's reply never blocks on a handler that
// already gave up (deadline expired, client gone).
type pending struct {
	req  scale.InferRequest
	ctx  context.Context
	done chan batchResult
}

type batchResult struct {
	rows [][]float32
	err  error
}

// batcher coalesces concurrent requests for one session into single batched
// forward calls. One goroutine per live session runs loop: it blocks for the
// first request, then keeps the batch open for at most window (or until
// maxBatch requests have joined) before executing. Requests never cross
// sessions — different (model, dims) pairs cannot share a forward pass.
//
// The channels are never closed while a sender may exist: handlers hold a
// sessionEntry ref for the duration of their send, and quit is only closed
// after those refs drain (eviction) or after every handler has returned
// (server close). After quit, loop drains whatever is still buffered in `in`
// so no admitted request is dropped on the floor.
type batcher struct {
	sess     *scale.Session
	backend  Backend
	window   time.Duration
	maxBatch int
	metrics  *Metrics
	in       chan *pending
	quit     chan struct{}
}

func newBatcher(sess *scale.Session, backend Backend, window time.Duration, maxBatch int, depth int, m *Metrics) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &batcher{
		sess:     sess,
		backend:  backend,
		window:   window,
		maxBatch: maxBatch,
		metrics:  m,
		in:       make(chan *pending, depth),
		quit:     make(chan struct{}),
	}
}

// submit enqueues one request. The caller must hold a sessionEntry ref (see
// Server.session) so the channel outlives the send.
func (b *batcher) submit(p *pending) { b.in <- p }

// loop is the batcher goroutine: collect a batch, execute, repeat. On quit
// it drains buffered requests (their handlers are still waiting) and exits.
func (b *batcher) loop() {
	for {
		select {
		case p := <-b.in:
			b.collect(p)
		case <-b.quit:
			for {
				select {
				case p := <-b.in:
					b.collect(p)
				default:
					return
				}
			}
		}
	}
}

// collect keeps the batch open for the latency window (bounded by maxBatch),
// then executes it. A zero window still coalesces whatever is already
// queued, without waiting.
func (b *batcher) collect(first *pending) {
	batch := append(make([]*pending, 0, b.maxBatch), first)
	if b.window > 0 {
		timer := time.NewTimer(b.window)
		for len(batch) < b.maxBatch {
			select {
			case p := <-b.in:
				batch = append(batch, p)
			case <-timer.C:
				b.run(batch)
				return
			}
		}
		timer.Stop()
	} else {
		for len(batch) < b.maxBatch {
			select {
			case p := <-b.in:
				batch = append(batch, p)
			default:
				b.run(batch)
				return
			}
		}
	}
	b.run(batch)
}

// run executes one batch. Members whose deadline expired while queued are
// answered with their context error (408 upstream) and dropped; the
// survivors share one forward call. A backend panic is contained into a
// *fault.PanicError and answered to every member — the process never dies,
// and requests in other batches and sessions are unaffected.
func (b *batcher) run(batch []*pending) {
	live := batch[:0]
	for _, p := range batch {
		if err := p.ctx.Err(); err != nil {
			p.done <- batchResult{err: err}
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	ctx, stop := joinContexts(live)
	defer stop()
	reqs := make([]scale.InferRequest, len(live))
	for i, p := range live {
		reqs[i] = p.req
	}
	var results [][][]float32
	err := fault.Safely(func() error {
		var err error
		results, err = b.backend(ctx, b.sess, reqs)
		return err
	})
	if err == nil && len(results) != len(live) {
		err = fmt.Errorf("serve: backend returned %d results for %d requests", len(results), len(live))
	}
	if err != nil {
		if _, ok := fault.AsPanic(err); ok {
			b.metrics.PanicsContained.Add(1)
		}
		for _, p := range live {
			p.done <- batchResult{err: err}
		}
		return
	}
	b.metrics.ObserveBatch(len(live))
	for i, p := range live {
		p.done <- batchResult{rows: results[i]}
	}
}

// joinContexts derives the batch's execution context from its members'. A
// single-member batch runs directly under that request's context, so its
// deadline maps straight through core.ForwardContext. A merged batch must
// not let one member's deadline cancel its batch-mates, so it runs under a
// context cancelled only when every member context is done (a fully
// abandoned batch still stops at the next scheduling-batch boundary).
func joinContexts(live []*pending) (context.Context, func()) {
	if len(live) == 1 {
		return live[0].ctx, func() {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	stopped := make(chan struct{})
	go func() {
		defer cancel()
		for _, p := range live {
			select {
			case <-p.ctx.Done():
			case <-stopped:
				return
			}
		}
	}()
	return ctx, func() { close(stopped) }
}
