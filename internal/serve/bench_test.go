package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// benchServe measures end-to-end /v1/infer throughput through the full
// handler stack (admission queue → session cache → micro-batcher →
// forward). The workload is a small graph, where per-call fixed costs
// (scheduling, state checkout, layer prep) dominate — exactly the regime a
// micro-batcher exists for.
func benchServe(b *testing.B, cfg Config) {
	cfg.Sim = testSim(b)
	s := New(cfg)
	defer s.Close()

	req := testGraph(42, 32, 3, 8)
	body, err := json.Marshal(inferBody{
		Model: "gcn", Dims: []int{8, 16, 8}, NumVertices: req.NumVertices,
		Edges: req.Edges, Features: req.Features,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the session and weights once so both variants measure steady
	// state.
	if rec := do(b, s, "POST", "/v1/infer", string(body)); rec.Code != 200 {
		b.Fatalf("warmup: %d %s", rec.Code, rec.Body.String())
	}

	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r := httptest.NewRequest("POST", "/v1/infer", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, r)
			if rec.Code != 200 {
				b.Errorf("code %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	})
}

// BenchmarkServeUnbatched is the one-request-at-a-time baseline: every
// request pays the full per-forward fixed cost.
func BenchmarkServeUnbatched(b *testing.B) {
	benchServe(b, Config{MaxBatch: 1})
}

// BenchmarkServeBatched lets the micro-batcher coalesce the concurrent
// clients; the recorded margin over BenchmarkServeUnbatched is the win
// committed to BENCH_pr5.json.
func BenchmarkServeBatched(b *testing.B) {
	benchServe(b, Config{MaxBatch: 16, BatchWindow: time.Millisecond})
}

// benchServeHeavy is benchServe on an aggregation-dominated workload — a
// dense graph with wide features, the regime the int8 tier targets. The
// fp32/int8 pair below shares this workload so their margin isolates the
// precision switch.
func benchServeHeavy(b *testing.B, precision string) {
	cfg := Config{MaxBatch: 16, BatchWindow: time.Millisecond, DefaultPrecision: precision}
	cfg.Sim = testSim(b)
	s := New(cfg)
	defer s.Close()

	req := testGraph(42, 256, 192, 64)
	body, err := json.Marshal(inferBody{
		Model: "gcn", Dims: []int{64, 32, 8}, NumVertices: req.NumVertices,
		Edges: req.Edges, Features: req.Features,
	})
	if err != nil {
		b.Fatal(err)
	}
	if rec := do(b, s, "POST", "/v1/infer", string(body)); rec.Code != 200 {
		b.Fatalf("warmup: %d %s", rec.Code, rec.Body.String())
	}

	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r := httptest.NewRequest("POST", "/v1/infer", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, r)
			if rec.Code != 200 {
				b.Errorf("code %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	})
}

// BenchmarkServeBatchedHeavy is the float32 reference for the int8 serving
// comparison committed to BENCH_pr7.json.
func BenchmarkServeBatchedHeavy(b *testing.B) {
	benchServeHeavy(b, "fp32")
}

// BenchmarkServeBatchedHeavyInt8 runs the identical workload through the
// quantized tier (server-default precision int8).
func BenchmarkServeBatchedHeavyInt8(b *testing.B) {
	benchServeHeavy(b, "int8")
}
