package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// benchServe measures end-to-end /v1/infer throughput through the full
// handler stack (admission queue → session cache → micro-batcher →
// forward). The workload is a small graph, where per-call fixed costs
// (scheduling, state checkout, layer prep) dominate — exactly the regime a
// micro-batcher exists for.
func benchServe(b *testing.B, cfg Config) {
	cfg.Sim = testSim(b)
	s := New(cfg)
	defer s.Close()

	req := testGraph(42, 32, 3, 8)
	body, err := json.Marshal(inferBody{
		Model: "gcn", Dims: []int{8, 16, 8}, NumVertices: req.NumVertices,
		Edges: req.Edges, Features: req.Features,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the session and weights once so both variants measure steady
	// state.
	if rec := do(b, s, "POST", "/v1/infer", string(body)); rec.Code != 200 {
		b.Fatalf("warmup: %d %s", rec.Code, rec.Body.String())
	}

	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r := httptest.NewRequest("POST", "/v1/infer", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, r)
			if rec.Code != 200 {
				b.Errorf("code %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	})
}

// BenchmarkServeUnbatched is the one-request-at-a-time baseline: every
// request pays the full per-forward fixed cost.
func BenchmarkServeUnbatched(b *testing.B) {
	benchServe(b, Config{MaxBatch: 1})
}

// BenchmarkServeBatched lets the micro-batcher coalesce the concurrent
// clients; the recorded margin over BenchmarkServeUnbatched is the win
// committed to BENCH_pr5.json.
func BenchmarkServeBatched(b *testing.B) {
	benchServe(b, Config{MaxBatch: 16, BatchWindow: time.Millisecond})
}
