package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scale"
	"scale/internal/graph"
	"scale/internal/shard"
)

func startShardWorkers(t *testing.T, sim *scale.Simulator, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		w := shard.NewWorker(shard.WorkerConfig{Sim: sim})
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		t.Cleanup(w.Close)
		addrs[i] = srv.URL
	}
	return addrs
}

func postBody(t *testing.T, handler http.Handler, path string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	b, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, b
}

// The PR's acceptance golden: the sharded serving path answers /v1/infer with
// a byte-identical response body to single-process serving, at 1, 2, and 4
// shards, fp32. Compared at the HTTP layer — same JSON bytes, not just close
// floats.
func TestShardedServingGolden(t *testing.T) {
	sim, err := scale.New(scale.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.CommunityGraph(220, 5, 9, 41)
	body := map[string]any{
		"model": "gcn", "dims": []int{11, 7, 4},
		"num_vertices": g.NumVertices(),
	}
	var edges [][2]int
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.InNeighbors(v) {
			edges = append(edges, [2]int{int(u), v})
		}
	}
	feats := make([][]float32, g.NumVertices())
	for v := range feats {
		row := make([]float32, 11)
		for j := range row {
			row[j] = float32((v*31+j*7)%19)*0.13 - 1.1
		}
		feats[v] = row
	}
	body["edges"] = edges
	body["features"] = feats

	local := New(Config{Sim: sim})
	defer local.Close()
	wantCode, want := postBody(t, local.Handler(), "/v1/infer", body)
	if wantCode != http.StatusOK {
		t.Fatalf("local infer: status %d: %s", wantCode, want)
	}

	addrs := startShardWorkers(t, sim, 4)
	for _, parts := range []int{1, 2, 4} {
		pool, err := shard.NewPool(shard.PoolConfig{Workers: addrs, Parts: parts})
		if err != nil {
			t.Fatal(err)
		}
		sharded := New(Config{Sim: sim, ShardPool: pool})
		code, got := postBody(t, sharded.Handler(), "/v1/infer", body)
		sharded.Close()
		if code != http.StatusOK {
			t.Fatalf("parts=%d: status %d: %s", parts, code, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("parts=%d: sharded response differs from single-process serving", parts)
		}
	}
}

// Requests below the sharding floor stay on the local micro-batcher.
func TestShardMinVerticesFloor(t *testing.T) {
	sim, err := scale.New(scale.Options{})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startShardWorkers(t, sim, 1)
	pool, err := shard.NewPool(shard.PoolConfig{Workers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Sim: sim, ShardPool: pool, ShardMinVertices: 100})
	defer srv.Close()
	code, body := postBody(t, srv.Handler(), "/v1/infer", map[string]any{
		"model": "gcn", "dims": []int{3, 2}, "num_vertices": 2,
		"edges": [][2]int{{0, 1}}, "features": [][]float32{{1, 0, 1}, {0, 1, 0}},
	})
	if code != http.StatusOK {
		t.Fatalf("small infer: status %d: %s", code, body)
	}
	if pool.Metrics().Requests.Load() != 0 {
		t.Fatal("a 2-vertex request crossed the 100-vertex sharding floor")
	}
	if srv.Metrics().Batches.Load() == 0 {
		t.Fatal("small request did not run through the local micro-batcher")
	}
}

// /v1/simulate on a shard-fronting server carries the NoC-costed cross-shard
// communication estimate; /metrics carries the pool counters.
func TestSimulateShardingEstimate(t *testing.T) {
	sim, err := scale.New(scale.Options{})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startShardWorkers(t, sim, 2)
	pool, err := shard.NewPool(shard.PoolConfig{Workers: addrs, Parts: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Sim: sim, ShardPool: pool})
	defer srv.Close()

	code, body := postBody(t, srv.Handler(), "/v1/simulate", map[string]any{"model": "gcn", "dataset": "cora"})
	if code != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", code, body)
	}
	var resp struct {
		Cycles   int64 `json:"Cycles"`
		Sharding *struct {
			Shards           int     `json:"shards"`
			Topology         string  `json:"topology"`
			HaloBytes        int64   `json:"halo_bytes"`
			ExchangeCycles   int64   `json:"exchange_cycles"`
			PredictedSpeedup float64 `json:"predicted_speedup"`
			ExposedFraction  float64 `json:"exposed_fraction"`
		} `json:"sharding"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Sharding == nil {
		t.Fatalf("simulate response has no sharding estimate: %s", body)
	}
	if resp.Sharding.Shards != 2 || resp.Sharding.Topology != "ring" {
		t.Fatalf("estimate labels wrong: %+v", resp.Sharding)
	}
	if resp.Sharding.PredictedSpeedup <= 1 || resp.Sharding.PredictedSpeedup > 2 {
		t.Fatalf("2-shard predicted speedup %v outside (1, 2]", resp.Sharding.PredictedSpeedup)
	}
	if resp.Sharding.HaloBytes <= 0 || resp.Sharding.ExchangeCycles <= 0 {
		t.Fatalf("estimate missing exchange cost: %+v", resp.Sharding)
	}

	// A server without a pool answers with no sharding key at all.
	plain := New(Config{Sim: sim})
	defer plain.Close()
	_, plainBody := postBody(t, plain.Handler(), "/v1/simulate", map[string]any{"model": "gcn", "dataset": "cora"})
	if bytes.Contains(plainBody, []byte("sharding")) {
		t.Fatal("plain server leaked a sharding estimate")
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	metrics := rec.Body.String()
	for _, want := range []string{"scale_shard_pool_requests_total", "scale_shard_pool_failovers_total", "scale_shard_pool_halo_bytes_total", "scale_shard_pool_workers 2"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// Full-pool outage: a front whose every worker is dead still answers
// shard-sized infers — bit-identically, via the local single-process
// fallback — and surfaces the outage in /healthz and /metrics.
func TestDegradedFallback(t *testing.T) {
	sim, err := scale.New(scale.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.CommunityGraph(150, 4, 8, 23)
	body := map[string]any{
		"model": "gcn", "dims": []int{7, 5, 3},
		"num_vertices": g.NumVertices(),
	}
	var edges [][2]int
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.InNeighbors(v) {
			edges = append(edges, [2]int{int(u), v})
		}
	}
	feats := make([][]float32, g.NumVertices())
	for v := range feats {
		row := make([]float32, 7)
		for j := range row {
			row[j] = float32((v*13+j*5)%17)*0.19 - 0.8
		}
		feats[v] = row
	}
	body["edges"] = edges
	body["features"] = feats

	plain := New(Config{Sim: sim})
	defer plain.Close()
	wantCode, want := postBody(t, plain.Handler(), "/v1/infer", body)
	if wantCode != http.StatusOK {
		t.Fatalf("plain infer: status %d: %s", wantCode, want)
	}

	// A worker address that is guaranteed dead: boot a server, take its port,
	// shut it down.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	pool, err := shard.NewPool(shard.PoolConfig{
		Workers:          []string{deadURL},
		BreakerThreshold: 1,
		DownFor:          time.Minute,
		RequestTimeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Sim: sim, ShardPool: pool})
	defer srv.Close()

	// First request: the pool still believes its worker alive, discovers the
	// outage on the data plane, and the serve layer falls back locally.
	code, got := postBody(t, srv.Handler(), "/v1/infer", body)
	if code != http.StatusOK {
		t.Fatalf("dead-pool infer: status %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("degraded fallback response differs from single-process serving")
	}
	if srv.Metrics().DegradedRequests.Load() == 0 {
		t.Fatal("fallback did not count as a degraded request")
	}

	// Second request: the breaker is open now, so the degraded pre-check
	// short-circuits before any worker I/O.
	code, got = postBody(t, srv.Handler(), "/v1/infer", body)
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("degraded pre-check infer: status %d, identical=%v", code, bytes.Equal(got, want))
	}
	if srv.Metrics().DegradedRequests.Load() < 2 {
		t.Fatalf("degraded requests = %d, want ≥2", srv.Metrics().DegradedRequests.Load())
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded /healthz status %d, want 200 (still serving)", rec.Code)
	}
	health := rec.Body.String()
	for _, frag := range []string{`"status":"degraded"`, `"degraded":true`, `"shard_workers_live":0`} {
		if !strings.Contains(health, frag) {
			t.Fatalf("/healthz %q missing %q", health, frag)
		}
	}

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	metrics := rec.Body.String()
	for _, frag := range []string{"scale_serve_degraded 1", "scale_shard_pool_breaker_open 1", "scale_shard_pool_workers_live 0"} {
		if !strings.Contains(metrics, frag) {
			t.Fatalf("/metrics missing %q", frag)
		}
	}
	if !strings.Contains(metrics, "scale_serve_degraded_requests_total 2") {
		t.Fatalf("/metrics degraded counter wrong:\n%s", metrics)
	}
}
