package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"scale/internal/dyn"
	"scale/internal/fault"
	"scale/internal/graph"
	"scale/internal/tensor"
)

// writeDynMetrics renders the dynamic graph's gauges and counters, including
// the schedule delta-invalidation hit rate (reused / refreshed entries; the
// dyn-smoke harness asserts it stays above zero under mutate+infer load).
func writeDynMetrics(w io.Writer, st dyn.Stats) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("scale_dyn_vertices", "Live vertices in the dynamic graph.", float64(st.Vertices))
	gauge("scale_dyn_edges", "Live edges in the dynamic graph (base + overlay).", float64(st.Edges))
	gauge("scale_dyn_delta_fraction", "Overlay edge ops as a fraction of base edges.", st.DeltaFrac)
	gauge("scale_dyn_delta_added", "Overlay edge inserts awaiting compaction.", float64(st.DeltaAdded))
	gauge("scale_dyn_delta_removed", "Overlay edge removals awaiting compaction.", float64(st.DeltaRemoved))
	counter("scale_dyn_mutations_total", "Individual graph deltas applied.", st.Mutations)
	counter("scale_dyn_mutation_batches_total", "Atomic mutation batches applied.", st.Batches)
	counter("scale_dyn_compactions_total", "Overlay compactions into the base CSR.", st.Compactions)
	counter("scale_dyn_sched_reused_total", "Schedule-table entries served from cache across refreshes.", st.SchedReused)
	counter("scale_dyn_sched_recomputed_total", "Schedule-table entries recomputed by delta-invalidation.", st.SchedRecomputed)
	rate := 0.0
	if total := st.SchedReused + st.SchedRecomputed; total > 0 {
		rate = float64(st.SchedReused) / float64(total)
	}
	gauge("scale_dyn_sched_invalidation_hit_rate", "Fraction of schedule-table refresh entries reused rather than recomputed.", rate)
}

// mutateOp is one JSON-encoded mutation of the POST /v1/mutate body.
type mutateOp struct {
	Op       string    `json:"op"` // add_edge, remove_edge, add_vertex
	Src      int32     `json:"src,omitempty"`
	Dst      int32     `json:"dst,omitempty"`
	Features []float32 `json:"features,omitempty"`
}

// mutateBody is the POST /v1/mutate JSON payload. The endpoint also accepts
// the binary batched-delta wire format (dyn.EncodeBatch) under
// Content-Type: application/octet-stream.
type mutateBody struct {
	Ops []mutateOp `json:"ops"`
}

// mutateResponse is the POST /v1/mutate success payload: the applied op
// count plus the graph's post-batch shape, so streaming writers can track
// growth without polling /metrics.
type mutateResponse struct {
	Applied      int     `json:"applied"`
	Vertices     int     `json:"vertices"`
	Edges        int64   `json:"edges"`
	DeltaAdded   int64   `json:"delta_added"`
	DeltaRemoved int64   `json:"delta_removed"`
	DeltaFrac    float64 `json:"delta_fraction"`
	Compactions  int64   `json:"compactions"`
}

// decodeMutateJSON maps the JSON op list onto a dyn.Batch, rejecting
// unknown verbs with the same typed sentinel as the binary decoder.
func decodeMutateJSON(body mutateBody) (dyn.Batch, error) {
	b := dyn.Batch{Ops: make([]dyn.Mutation, 0, len(body.Ops))}
	for i, op := range body.Ops {
		m := dyn.Mutation{Src: op.Src, Dst: op.Dst, Features: op.Features}
		switch op.Op {
		case "add_edge":
			m.Op = dyn.OpAddEdge
		case "remove_edge":
			m.Op = dyn.OpRemoveEdge
		case "add_vertex":
			m.Op = dyn.OpAddVertex
		default:
			return dyn.Batch{}, fmt.Errorf("serve: op %d: unknown mutation op %q: %w", i, op.Op, fault.ErrBadGraph)
		}
		b.Ops = append(b.Ops, m)
	}
	return b, nil
}

// handleMutate serves POST /v1/mutate: one atomic batch of graph deltas
// against the server's dynamic graph. Malformed batches are typed 400s
// (fault sentinels, decoded-before-allocated), a mid-compaction graph
// answers 409 with Retry-After, and a successful batch reports the new
// graph shape.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required", "usage")
		return
	}
	if !s.begin() {
		s.writeMapped(w, errDraining)
		return
	}
	defer s.end()
	if !s.queue.tryAcquire() {
		s.metrics.QueueRejections.Add(1)
		w.Header().Set("Retry-After", retrySeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "admission queue full", "over_capacity")
		return
	}
	defer s.queue.release()
	if s.cfg.Dynamic == nil {
		writeError(w, http.StatusBadRequest, "server has no dynamic graph (-dynamic)", "bad_input")
		return
	}

	var batch dyn.Batch
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/octet-stream") {
		var err error
		if batch, err = dyn.DecodeBatch(r.Body); err != nil {
			s.writeMapped(w, err)
			return
		}
	} else {
		var body mutateBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON body: "+err.Error(), "bad_input")
			return
		}
		var err error
		if batch, err = decodeMutateJSON(body); err != nil {
			s.writeMapped(w, err)
			return
		}
	}

	if err := s.cfg.Dynamic.Apply(batch); err != nil {
		s.metrics.MutationsRejected.Add(1)
		s.writeMapped(w, err)
		return
	}
	s.metrics.MutationBatches.Add(1)
	s.metrics.MutationOps.Add(int64(len(batch.Ops)))
	st := s.cfg.Dynamic.Stats()
	writeJSON(w, http.StatusOK, mutateResponse{
		Applied:      len(batch.Ops),
		Vertices:     st.Vertices,
		Edges:        st.Edges,
		DeltaAdded:   st.DeltaAdded,
		DeltaRemoved: st.DeltaRemoved,
		DeltaFrac:    st.DeltaFrac,
		Compactions:  st.Compactions,
	})
}

// handleInferDirect serves infer requests that bypass the micro-batcher:
// dynamic-graph requests ("graph":"dynamic" — the vertex set is the
// server's, so disjoint-union batching does not apply) and sampled requests
// (sample_fanout > 0 — per-request seeds bind to request-local vertex ids,
// which batching would shift). The forward pass runs under
// Config.SampleWorkers; fp32 responses are byte-identical for every worker
// count and across replays of the same seed.
func (s *Server) handleInferDirect(w http.ResponseWriter, r *http.Request, body inferBody, precision string) {
	entry, err := s.session(body.Model, body.Dims, precision)
	if err != nil {
		s.writeMapped(w, err)
		return
	}
	defer entry.refs.Done()

	var g *graph.Graph
	var x *tensor.Matrix
	if body.Graph == "dynamic" {
		if s.cfg.Dynamic == nil {
			writeError(w, http.StatusBadRequest, "server has no dynamic graph (-dynamic)", "bad_input")
			return
		}
		s.metrics.DynRequests.Add(1)
		if g, x, err = s.cfg.Dynamic.View(); err != nil {
			s.writeMapped(w, err)
			return
		}
	} else {
		// Sampled inference over a request-carried graph: same body shape
		// as the batched path, validated with the same sentinels.
		if err := validateShardBody(&body); err != nil {
			s.writeMapped(w, err)
			return
		}
		b := graph.NewBuilder(body.NumVertices)
		for _, e := range body.Edges {
			b.AddEdge(e[0], e[1])
		}
		g = b.Build("user")
		x = tensor.NewMatrix(body.NumVertices, body.Dims[0])
		for v, row := range body.Features {
			copy(x.Row(v), row)
		}
	}

	ctx := r.Context()
	cancel := func() {}
	if body.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(body.TimeoutMS)*time.Millisecond)
	}
	defer cancel()

	var rows [][]float32
	if body.SampleFanout > 0 {
		s.metrics.SampledRequests.Add(1)
		sampler := dyn.Sampler{Fanout: body.SampleFanout, Seed: body.SampleSeed}
		layers, serr := sampler.Sample(g, entry.sess.NumLayers())
		if serr != nil {
			s.writeMapped(w, serr)
			return
		}
		rows, err = entry.sess.InferSampled(ctx, layers, x, s.cfg.SampleWorkers)
	} else {
		rows, err = entry.sess.InferGraph(ctx, g, x, s.cfg.SampleWorkers)
	}
	if err != nil {
		s.writeMapped(w, err)
		return
	}
	writeJSON(w, http.StatusOK, inferResponse{Model: entry.sess.Model(), Precision: entry.sess.Precision(), Embeddings: rows})
}
