// Package serve is the production inference front door of the SCALE
// reproduction: a stdlib-only net/http JSON API that exposes the simulator
// (/v1/simulate) and the functional inference engine (/v1/infer) as a
// long-lived service.
//
// Three mechanisms make it survive sustained traffic (DESIGN.md §4h):
//
//   - A session cache keyed on (model, dims): each scale.Session — the
//     gnn.Model, its lazily materialized weights, and the accelerator's
//     pooled forward scratch — is constructed once and reused across
//     requests, bounded by MaxSessions with LRU eviction.
//   - A dynamic micro-batcher per session: concurrent infer requests
//     coalesce into single batched forward calls under a latency budget
//     (BatchWindow / MaxBatch), with results bit-identical to serial
//     execution (scale.Session.InferBatch's disjoint-union guarantee).
//   - A bounded admission queue: when QueueDepth requests are in flight the
//     server sheds load with 429 + Retry-After instead of queueing
//     unboundedly. Per-request deadlines map to context cancellation
//     through core.ForwardContext; fault sentinels map to 400s; contained
//     panics map to 500s without crashing the process.
//
// Shutdown is a graceful drain: BeginDrain stops admitting (503), in-flight
// requests finish through http.Server.Shutdown, then Close retires the
// batcher goroutines.
package serve

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scale"
	"scale/internal/dyn"
	"scale/internal/shard"
)

// Config parameterizes a Server. The zero value of every field selects a
// production-reasonable default; only Sim is required.
type Config struct {
	// Sim is the shared simulator; its accelerator model and forward-state
	// pool back every session. Required.
	Sim *scale.Simulator
	// BatchWindow is how long the micro-batcher holds a batch open for
	// late joiners (default 2ms; 0 coalesces only already-queued requests).
	BatchWindow time.Duration
	// MaxBatch caps requests coalesced into one forward call (default 16;
	// 1 disables micro-batching).
	MaxBatch int
	// QueueDepth bounds concurrently admitted requests (default 64).
	QueueDepth int
	// MaxSessions bounds the session cache (default 8, LRU eviction).
	MaxSessions int
	// MaxVertices caps a single infer request's vertex count (default
	// 1<<20) so one request cannot exhaust server memory.
	MaxVertices int
	// RetryAfter is the Retry-After hint on 429/503 answers (default 1s).
	RetryAfter time.Duration
	// DefaultPrecision is the execution precision applied to infer
	// requests that do not carry a "precision" field: "" or "fp32" (the
	// default float32 tier) or "int8" (quantized). Requests can always
	// override it per call.
	DefaultPrecision string
	// Backend overrides batch execution (tests inject faults); the default
	// is (*scale.Session).InferBatch.
	Backend Backend
	// ShardPool, when set, routes infer requests with at least
	// ShardMinVertices vertices to the sharded worker tier (internal/shard)
	// instead of the local micro-batcher, and decorates /v1/simulate with
	// the NoC-costed cross-shard communication estimate. fp32 sharded
	// results are bit-identical to local serving.
	ShardPool *shard.Pool
	// ShardMinVertices is the smallest request the sharded path takes
	// (default 1 — everything — when ShardPool is set). Small graphs cost
	// more in halo round-trips than they gain in parallelism; raising the
	// floor keeps them on the local micro-batcher.
	ShardMinVertices int
	// Dynamic, when set, is the server's mutable graph: POST /v1/mutate
	// applies batched deltas to it, and infer requests with
	// "graph":"dynamic" run against its current snapshot instead of
	// carrying their own edges/features. /metrics gains mutation,
	// compaction, and schedule-invalidation counters.
	Dynamic *dyn.Graph
	// SampleWorkers bounds row-level parallelism on the direct inference
	// path (dynamic-graph and sampled requests, which bypass the
	// micro-batcher; 0 = all cores). fp32 results are bit-identical for
	// every value — the determinism tests sweep it.
	SampleWorkers int
}

func (c Config) withDefaults() Config {
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 8
	}
	if c.MaxVertices == 0 {
		c.MaxVertices = 1 << 20
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.Backend == nil {
		c.Backend = func(ctx context.Context, sess *scale.Session, reqs []scale.InferRequest) ([][][]float32, error) {
			return sess.InferBatch(ctx, reqs)
		}
	}
	if c.ShardPool != nil && c.ShardMinVertices == 0 {
		c.ShardMinVertices = 1
	}
	return c
}

// sessionEntry is one cached session plus its batcher. refs counts handlers
// currently submitting into the batcher: eviction removes the entry from the
// map (no new refs) and only closes the batcher after refs drain, so a send
// never races a close.
type sessionEntry struct {
	key     string
	sess    *scale.Session
	b       *batcher
	refs    sync.WaitGroup
	lastUse atomic.Int64
}

// Server is the HTTP service. Construct with New, mount Handler on an
// http.Server, and on shutdown call BeginDrain, then http.Server.Shutdown,
// then Close.
type Server struct {
	cfg     Config
	metrics *Metrics
	queue   *queue
	mux     *http.ServeMux
	start   time.Time
	useSeq  atomic.Int64

	mu       sync.Mutex
	sessions map[string]*sessionEntry
	draining bool
	closed   bool
	handlers sync.WaitGroup
	batchers sync.WaitGroup
}

// New builds a Server around cfg.Sim.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		metrics:  NewMetrics(),
		start:    time.Now(),
		sessions: make(map[string]*sessionEntry),
	}
	s.queue = newQueue(s.cfg.QueueDepth)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/infer", s.instrument("infer", s.handleInfer))
	s.mux.HandleFunc("/v1/mutate", s.instrument("mutate", s.handleMutate))
	s.mux.HandleFunc("/v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counters (tests, ops hooks).
func (s *Server) Metrics() *Metrics { return s.metrics }

// begin admits one handler unless the server is draining. It pairs with end;
// taking the ref under mu orders every Add before Close's Wait.
func (s *Server) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.handlers.Add(1)
	return true
}

func (s *Server) end() { s.handlers.Done() }

// BeginDrain flips the server into drain mode: /healthz answers 503 (load
// balancers stop routing here) and new API requests are refused with 503 +
// Retry-After. Requests already admitted run to completion. Idempotent.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close completes the drain: it waits for in-flight handlers, then retires
// every batcher goroutine. Call after http.Server.Shutdown has returned (no
// new connections). Idempotent.
func (s *Server) Close() {
	s.BeginDrain()
	s.handlers.Wait()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	entries := make([]*sessionEntry, 0, len(s.sessions))
	for k, e := range s.sessions {
		entries = append(entries, e)
		delete(s.sessions, k)
		s.metrics.DeleteSessionPrecision(k)
	}
	s.mu.Unlock()
	for _, e := range entries {
		close(e.b.quit)
	}
	s.batchers.Wait()
}

// LiveSessions reports the number of cached sessions.
func (s *Server) LiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// session returns the cached entry for (model, dims, precision),
// constructing it (and evicting the least-recently-used entry if the cache
// is full) on miss. On success the entry holds one ref for the caller, who
// must release it with entry.refs.Done() once its submit has completed.
func (s *Server) session(model string, dims []int, precision string) (*sessionEntry, error) {
	key := sessionKey(model, dims, precision)
	s.mu.Lock()
	if e, ok := s.sessions[key]; ok {
		e.lastUse.Store(s.useSeq.Add(1))
		e.refs.Add(1)
		s.mu.Unlock()
		return e, nil
	}
	s.mu.Unlock()

	// Build outside the lock: model construction (and, for int8 sessions,
	// one-time weight quantization) does real work and must not serialize
	// unrelated traffic. A racing duplicate build is benign — sessions are
	// deterministic — and the map insert below deduplicates.
	sess, err := s.cfg.Sim.NewSessionPrecision(model, dims, precision)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if e, ok := s.sessions[key]; ok {
		e.lastUse.Store(s.useSeq.Add(1))
		e.refs.Add(1)
		s.mu.Unlock()
		return e, nil
	}
	if s.closed {
		s.mu.Unlock()
		return nil, errDraining
	}
	for len(s.sessions) >= s.cfg.MaxSessions {
		s.evictLocked()
	}
	e := &sessionEntry{
		key:  key,
		sess: sess,
		b:    newBatcher(sess, s.cfg.Backend, s.cfg.BatchWindow, s.cfg.MaxBatch, s.cfg.QueueDepth, s.metrics),
	}
	e.lastUse.Store(s.useSeq.Add(1))
	e.refs.Add(1)
	s.sessions[key] = e
	s.metrics.SessionsCreated.Add(1)
	compression, avgBytes := sess.PrecisionStats()
	s.metrics.SetSessionPrecision(key, sess.Precision(), compression, avgBytes)
	s.batchers.Add(1)
	go func() {
		defer s.batchers.Done()
		e.b.loop()
	}()
	s.mu.Unlock()
	return e, nil
}

// evictLocked removes the least-recently-used session. The batcher is only
// quit after in-flight refs drain; it then drains its queue and exits, so
// requests that raced the eviction still complete.
func (s *Server) evictLocked() {
	var victim *sessionEntry
	for _, e := range s.sessions {
		if victim == nil || e.lastUse.Load() < victim.lastUse.Load() {
			victim = e
		}
	}
	if victim == nil {
		return
	}
	delete(s.sessions, victim.key)
	s.metrics.SessionsEvicted.Add(1)
	s.metrics.DeleteSessionPrecision(victim.key)
	go func() {
		victim.refs.Wait()
		close(victim.b.quit)
	}()
}

// sessionKey renders the cache key. handleInfer normalizes the precision
// (request field, then Config.DefaultPrecision, then "fp32") before lookup,
// so "" never reaches the key and equivalent requests share one session.
func sessionKey(model string, dims []int, precision string) string {
	key := model
	for _, d := range dims {
		key += "/" + strconv.Itoa(d)
	}
	return key + "/" + precision
}
