package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
	"time"

	"scale"
)

// testGraph builds a deterministic random request for the given session
// shape.
func testGraph(seed int64, n, degree, dim int) scale.InferRequest {
	rng := rand.New(rand.NewSource(seed))
	req := scale.InferRequest{NumVertices: n}
	for v := 0; v < n; v++ {
		for k := 0; k < degree; k++ {
			req.Edges = append(req.Edges, [2]int{rng.Intn(n), v})
		}
	}
	req.Features = make([][]float32, n)
	for v := range req.Features {
		row := make([]float32, dim)
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		req.Features[v] = row
	}
	return req
}

// TestMicroBatchBitIdentical is the acceptance pin for dynamic batching: N
// concurrent /v1/infer requests for the same session, coalesced by the
// micro-batcher, must produce responses byte-identical to N serial
// scale.Infer calls on a fresh Simulator.
func TestMicroBatchBitIdentical(t *testing.T) {
	const n = 8
	dims := []int{4, 8, 4}
	reqs := make([]scale.InferRequest, n)
	for i := range reqs {
		reqs[i] = testGraph(int64(1000+i), 10+i*7, 1+i%3, 4)
	}

	// Serial ground truth through the public one-shot API.
	serialSim := testSim(t)
	want := make([][]byte, n)
	for i, r := range reqs {
		rows, err := serialSim.Infer("gcn", dims, r.NumVertices, r.Edges, r.Features)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(inferResponse{Model: "gcn", Precision: "fp32", Embeddings: rows}); err != nil {
			t.Fatal(err)
		}
		want[i] = buf.Bytes()
	}

	// Concurrent, coalesced execution: a wide window guarantees the batcher
	// sees all stragglers before firing.
	s := newTestServer(t, Config{BatchWindow: 100 * time.Millisecond, MaxBatch: n})
	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
		got   = make([][]byte, n)
		codes = make([]int, n)
	)
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			body := inferBody{Model: "gcn", Dims: dims, NumVertices: reqs[i].NumVertices,
				Edges: reqs[i].Edges, Features: reqs[i].Features}
			rec := do(t, s, "POST", "/v1/infer", body)
			codes[i] = rec.Code
			got[i] = rec.Body.Bytes()
		}(i)
	}
	close(start)
	wg.Wait()

	for i := range reqs {
		if codes[i] != 200 {
			t.Fatalf("request %d: code %d: %s", i, codes[i], got[i])
		}
		if !bytes.Equal(want[i], got[i]) {
			t.Errorf("request %d: batched response differs from serial Infer\nserial:  %s\nbatched: %s", i, want[i], got[i])
		}
	}
	// The point of the test is that batching actually happened.
	m := s.Metrics()
	if m.BatchedRequests.Load() != n {
		t.Fatalf("batched requests = %d, want %d", m.BatchedRequests.Load(), n)
	}
	if m.Batches.Load() >= n {
		t.Errorf("batches = %d for %d requests — nothing coalesced", m.Batches.Load(), n)
	}
}

// TestZeroWindowCoalescesQueued pins the window=0 contract: already-queued
// requests coalesce, but the batcher never waits for stragglers.
func TestZeroWindowCoalescesQueued(t *testing.T) {
	sim := testSim(t)
	sess, err := sim.NewSession("gcn", []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	var mu sync.Mutex
	backend := func(ctx context.Context, sess *scale.Session, reqs []scale.InferRequest) ([][][]float32, error) {
		mu.Lock()
		sizes = append(sizes, len(reqs))
		mu.Unlock()
		return sess.InferBatch(ctx, reqs)
	}
	b := newBatcher(sess, backend, 0, 8, 8, NewMetrics())
	req := testGraph(1, 4, 1, 2)
	var pendings []*pending
	for i := 0; i < 3; i++ {
		p := &pending{req: req, ctx: context.Background(), done: make(chan batchResult, 1)}
		pendings = append(pendings, p)
		b.submit(p) // buffered channel: queued before the loop starts
	}
	go b.loop()
	defer close(b.quit)
	for _, p := range pendings {
		if res := <-p.done; res.err != nil {
			t.Fatal(res.err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 1 || sizes[0] != 3 {
		t.Fatalf("batch sizes = %v, want one batch of 3", sizes)
	}
}

// TestJoinContexts pins the merged-batch context semantics: one member's
// death must not cancel the batch; all members' deaths must.
func TestJoinContexts(t *testing.T) {
	one := &pending{ctx: context.Background()}
	ctx, stop := joinContexts([]*pending{one})
	if ctx != one.ctx {
		t.Fatal("single-member batch must run directly under the request context")
	}
	stop()

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	merged, stop := joinContexts([]*pending{{ctx: ctx1}, {ctx: ctx2}})
	defer stop()
	cancel1()
	select {
	case <-merged.Done():
		t.Fatal("one member's cancellation must not cancel the batch")
	case <-time.After(20 * time.Millisecond):
	}
	cancel2()
	select {
	case <-merged.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("batch context must cancel once every member is done")
	}
}

// TestSessionEviction bounds the cache: with MaxSessions=2, a third session
// evicts the least-recently-used one, every request still answers 200, and
// the evicted batcher goroutine retires without dropping work.
func TestSessionEviction(t *testing.T) {
	s := newTestServer(t, Config{MaxSessions: 2, BatchWindow: time.Millisecond})
	models := []string{"gcn", "gin", "gat"}
	for round := 0; round < 3; round++ {
		for i, model := range models {
			req := testGraph(int64(10*round+i), 6, 2, 3)
			body := inferBody{Model: model, Dims: []int{3, 3}, NumVertices: req.NumVertices,
				Edges: req.Edges, Features: req.Features}
			if rec := do(t, s, "POST", "/v1/infer", body); rec.Code != 200 {
				t.Fatalf("round %d %s: %d %s", round, model, rec.Code, rec.Body.String())
			}
		}
	}
	if live := s.LiveSessions(); live > 2 {
		t.Fatalf("live sessions = %d, want ≤ 2", live)
	}
	m := s.Metrics()
	if m.SessionsCreated.Load() < 3 || m.SessionsEvicted.Load() < 1 {
		t.Fatalf("created = %d, evicted = %d", m.SessionsCreated.Load(), m.SessionsEvicted.Load())
	}
}

// TestSessionReuseAcrossRequests proves the cache works: two requests for
// the same (model, dims) construct exactly one session.
func TestSessionReuseAcrossRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	for i := 0; i < 5; i++ {
		if rec := do(t, s, "POST", "/v1/infer", validInfer()); rec.Code != 200 {
			t.Fatalf("request %d: %d", i, rec.Code)
		}
	}
	if n := s.Metrics().SessionsCreated.Load(); n != 1 {
		t.Fatalf("sessions created = %d, want 1", n)
	}
	// Different dims for the same model is a different session.
	other := validInfer()
	other.Dims = []int{2, 5}
	if rec := do(t, s, "POST", "/v1/infer", other); rec.Code != 200 {
		t.Fatalf("other dims: %d", rec.Code)
	}
	if n := s.Metrics().SessionsCreated.Load(); n != 2 {
		t.Fatalf("sessions created = %d, want 2", n)
	}
}
