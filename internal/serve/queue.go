package serve

// queue is the bounded admission gate: a counting semaphore sized to the
// server's concurrent-request budget. Admission is try-only — when every
// slot is held the caller answers 429 with a Retry-After hint immediately
// instead of queueing unboundedly, which is the backpressure contract: under
// overload the server sheds load at the front door with a cheap, honest
// signal rather than accumulating latency for everyone already inside.
//
// The depth bounds requests *admitted* (decoding, session lookup, waiting on
// a micro-batch), not forward passes — the micro-batcher serializes those
// per session — so depth trades memory for burst absorption.
type queue struct {
	slots chan struct{}
}

func newQueue(depth int) *queue {
	return &queue{slots: make(chan struct{}, depth)}
}

// tryAcquire claims an admission slot without blocking.
func (q *queue) tryAcquire() bool {
	select {
	case q.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (q *queue) release() { <-q.slots }

// inUse reports the number of held slots (health introspection).
func (q *queue) inUse() int { return len(q.slots) }

// depth reports the queue capacity.
func (q *queue) depth() int { return cap(q.slots) }
