package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"scale"
	"scale/internal/dyn"
	"scale/internal/gnn"
	"scale/internal/graph"
	"scale/internal/tensor"
)

// newDynGraph builds a 256-vertex dynamic graph (4 schedule batches at the
// default SchedBatch 64, so delta-invalidation has cache entries to reuse)
// with seeded dim-8 features.
func newDynGraph(t testing.TB, cfg dyn.Config) *dyn.Graph {
	t.Helper()
	base := graph.ErdosRenyi(256, 1024, 7)
	x := gnn.RandomFeatures(base, 8, 11)
	d, err := dyn.New(base, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// dynMirror re-applies every mutation batch to an independent edge-multiset
// mirror and rebuilds (graph, features) from scratch through graph.Builder —
// the reference the bit-identity soak compares serving against.
type dynMirror struct {
	n     int
	edges [][2]int32
	feats [][]float32
}

func newDynMirror(t testing.TB) *dynMirror {
	t.Helper()
	base := graph.ErdosRenyi(256, 1024, 7)
	x := gnn.RandomFeatures(base, 8, 11)
	m := &dynMirror{n: base.NumVertices()}
	for v := 0; v < base.NumVertices(); v++ {
		for _, u := range base.InNeighbors(v) {
			m.edges = append(m.edges, [2]int32{u, int32(v)})
		}
	}
	for i := 0; i < x.Rows; i++ {
		m.feats = append(m.feats, append([]float32(nil), x.Row(i)...))
	}
	return m
}

func (m *dynMirror) apply(t testing.TB, ops []mutateOp) {
	t.Helper()
	for _, op := range ops {
		switch op.Op {
		case "add_edge":
			m.edges = append(m.edges, [2]int32{op.Src, op.Dst})
		case "remove_edge":
			for i, e := range m.edges {
				if e[0] == op.Src && e[1] == op.Dst {
					m.edges = append(m.edges[:i], m.edges[i+1:]...)
					break
				}
			}
		case "add_vertex":
			m.n++
			m.feats = append(m.feats, append([]float32(nil), op.Features...))
		default:
			t.Fatalf("mirror: unknown op %q", op.Op)
		}
	}
}

func (m *dynMirror) build() (*graph.Graph, *tensor.Matrix) {
	b := graph.NewBuilder(m.n)
	for _, e := range m.edges {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	return b.Build("mirror"), tensor.FromRows(m.feats)
}

// TestMutateWhileInferSoak is the acceptance soak: mutation batches stream
// through POST /v1/mutate while concurrent dynamic infers run, and after
// every batch the served fp32 unsampled embeddings must be exactly equal to
// inference over a from-scratch Builder rebuild of the same edge multiset
// (through an independent Session). The delta threshold is set so the soak
// crosses a compaction mid-run, proving bit-identity survives re-freezing,
// and the schedule table must end with both reuse (hit rate > 0) and
// strictly fewer recomputed entries than a full per-batch recompute.
func TestMutateWhileInferSoak(t *testing.T) {
	d := newDynGraph(t, dyn.Config{CompactThreshold: 0.002})
	s := newTestServer(t, Config{Dynamic: d, SampleWorkers: 2})
	mirror := newDynMirror(t)

	refSess, err := testSim(t).NewSession("gcn", []int{8, 16, 8})
	if err != nil {
		t.Fatal(err)
	}
	inferDyn := func() (*httptest.ResponseRecorder, [][]float32) {
		rec := do(t, s, http.MethodPost, "/v1/infer", inferBody{Model: "gcn", Dims: []int{8, 16, 8}, Graph: "dynamic"})
		if rec.Code != http.StatusOK {
			t.Fatalf("dynamic infer: %d %s", rec.Code, rec.Body.String())
		}
		var resp inferResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return rec, resp.Embeddings
	}

	// Background infer pressure: dynamic infers racing the mutation stream
	// must each see some consistent snapshot (200s all the way).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				rec := do(t, s, http.MethodPost, "/v1/infer", inferBody{Model: "gcn", Dims: []int{8, 16, 8}, Graph: "dynamic"})
				if rec.Code != http.StatusOK {
					t.Errorf("concurrent dynamic infer: %d %s", rec.Code, rec.Body.String())
					return
				}
			}
		}
	}()

	rounds := [][]mutateOp{
		{{Op: "add_edge", Src: 3, Dst: 9}, {Op: "add_edge", Src: 3, Dst: 9}, {Op: "add_edge", Src: 250, Dst: 1}},
		{{Op: "remove_edge", Src: 3, Dst: 9}, {Op: "add_vertex", Features: []float32{1, 2, 3, 4, 5, 6, 7, 8}}},
		{{Op: "add_edge", Src: 256, Dst: 70}, {Op: "add_edge", Src: 7, Dst: 256}},
		{{Op: "add_edge", Src: 100, Dst: 200}, {Op: "add_edge", Src: 200, Dst: 100}},
		{{Op: "add_edge", Src: 11, Dst: 12}, {Op: "add_edge", Src: 13, Dst: 140}, {Op: "add_edge", Src: 15, Dst: 220}},
		{{Op: "remove_edge", Src: 100, Dst: 200}},
	}
	for i, ops := range rounds {
		rec := do(t, s, http.MethodPost, "/v1/mutate", mutateBody{Ops: ops})
		if rec.Code != http.StatusOK {
			t.Fatalf("round %d mutate: %d %s", i, rec.Code, rec.Body.String())
		}
		mirror.apply(t, ops)

		_, got := inferDyn()
		refG, refX := mirror.build()
		want, err := refSess.InferGraph(context.Background(), refG, refX, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: served embeddings diverge from from-scratch rebuild", i)
		}
	}
	close(stop)
	wg.Wait()

	st := d.Stats()
	if st.Compactions == 0 {
		t.Fatalf("soak never crossed the compaction threshold: %+v", st)
	}
	if st.SchedReused == 0 {
		t.Fatalf("delta-invalidation never reused a schedule entry: %+v", st)
	}
	// Full recompute would redo every entry at every refresh; reuse > 0
	// means strictly fewer entries were recomputed.
	if st.SchedRecomputed >= st.SchedReused+st.SchedRecomputed {
		t.Fatalf("no entries reused: recomputed=%d reused=%d", st.SchedRecomputed, st.SchedReused)
	}

	// The invalidation-hit-rate metric the smoke harness greps must render
	// and be positive.
	rec := do(t, s, http.MethodGet, "/metrics", nil)
	body := rec.Body.String()
	for _, want := range []string{
		"scale_dyn_sched_reused_total",
		"scale_dyn_sched_invalidation_hit_rate",
		"scale_dyn_compactions_total",
		"scale_serve_mutation_batches_total 6",
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// sampledReq renders a fixed request-carried graph for the determinism
// matrix: 60 vertices, avg degree 10 (well above both fanouts, so sampling
// actually trims rows).
func sampledReq(t testing.TB, fanout int, seed uint64) inferBody {
	t.Helper()
	g := graph.ErdosRenyi(60, 600, 5)
	x := gnn.RandomFeatures(g, 4, 3)
	edges := make([][2]int, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.InNeighbors(v) {
			edges = append(edges, [2]int{int(u), v})
		}
	}
	feats := make([][]float32, x.Rows)
	for i := range feats {
		feats[i] = x.Row(i)
	}
	return inferBody{
		Model: "gcn", Dims: []int{4, 8, 4},
		NumVertices: g.NumVertices(), Edges: edges, Features: feats,
		SampleFanout: fanout, SampleSeed: seed,
	}
}

// TestSampledInferDeterministicAcrossWorkers pins the HTTP-layer sampling
// contract: for a fixed seed, the raw response bytes are identical across
// SampleWorkers 1, 2, and 8 and across repeats, for two different fanouts —
// and a different seed provably changes the answer.
func TestSampledInferDeterministicAcrossWorkers(t *testing.T) {
	servers := map[int]*Server{}
	for _, w := range []int{1, 2, 8} {
		servers[w] = newTestServer(t, Config{SampleWorkers: w})
	}
	for _, fanout := range []int{3, 7} {
		var golden []byte
		for _, w := range []int{1, 2, 8} {
			for rep := 0; rep < 2; rep++ {
				rec := do(t, servers[w], http.MethodPost, "/v1/infer", sampledReq(t, fanout, 99))
				if rec.Code != http.StatusOK {
					t.Fatalf("fanout %d workers %d: %d %s", fanout, w, rec.Code, rec.Body.String())
				}
				if golden == nil {
					golden = rec.Body.Bytes()
				} else if !bytes.Equal(golden, rec.Body.Bytes()) {
					t.Fatalf("fanout %d: workers=%d rep=%d response bytes differ from golden", fanout, w, rep)
				}
			}
		}
		// A different seed must draw different neighborhoods (and, with
		// overwhelming probability on 60 sampled rows, different floats).
		rec := do(t, servers[1], http.MethodPost, "/v1/infer", sampledReq(t, fanout, 100))
		if rec.Code != http.StatusOK {
			t.Fatalf("fanout %d seed 100: %d %s", fanout, rec.Code, rec.Body.String())
		}
		if bytes.Equal(golden, rec.Body.Bytes()) {
			t.Fatalf("fanout %d: seeds 99 and 100 produced identical responses", fanout)
		}
	}
}

// TestSampledFanoutLargerThanDegreeMatchesFull: a fanout at least every
// vertex's degree keeps all edges, so the sampled answer equals the
// unsampled one (same direct path).
func TestSampledFanoutEqualsFullWhenUncut(t *testing.T) {
	s := newTestServer(t, Config{SampleWorkers: 1})
	full := sampledReq(t, 0, 0)
	full.SampleFanout = 0
	full.Graph = "" // plain batched path
	recFull := do(t, s, http.MethodPost, "/v1/infer", full)
	if recFull.Code != http.StatusOK {
		t.Fatalf("full: %d %s", recFull.Code, recFull.Body.String())
	}
	capped := sampledReq(t, 600, 7) // fanout ≥ max degree: nothing trimmed
	recCap := do(t, s, http.MethodPost, "/v1/infer", capped)
	if recCap.Code != http.StatusOK {
		t.Fatalf("capped: %d %s", recCap.Code, recCap.Body.String())
	}
	var a, b inferResponse
	if err := json.Unmarshal(recFull.Body.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(recCap.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Embeddings, b.Embeddings) {
		t.Fatal("uncut sampled inference diverges from the full pass")
	}
}

// TestMutateStatusMapping drives the /v1/mutate error surface.
func TestMutateStatusMapping(t *testing.T) {
	d := newDynGraph(t, dyn.Config{CompactThreshold: math.Inf(1)})
	s := newTestServer(t, Config{Dynamic: d})

	t.Run("method", func(t *testing.T) {
		if rec := do(t, s, http.MethodGet, "/v1/mutate", nil); rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("GET: %d", rec.Code)
		}
	})
	t.Run("ok json", func(t *testing.T) {
		rec := do(t, s, http.MethodPost, "/v1/mutate", mutateBody{Ops: []mutateOp{{Op: "add_edge", Src: 1, Dst: 2}}})
		if rec.Code != http.StatusOK {
			t.Fatalf("%d %s", rec.Code, rec.Body.String())
		}
		var resp mutateResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Applied != 1 || resp.Edges != 1025 {
			t.Fatalf("unexpected response %+v", resp)
		}
	})
	t.Run("ok binary", func(t *testing.T) {
		var buf bytes.Buffer
		if err := dyn.EncodeBatch(&buf, dyn.Batch{Ops: []dyn.Mutation{{Op: dyn.OpRemoveEdge, Src: 1, Dst: 2}}}); err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/mutate", &buf)
		req.Header.Set("Content-Type", "application/octet-stream")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("binary: %d %s", rec.Code, rec.Body.String())
		}
	})
	t.Run("truncated binary is 400", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodPost, "/v1/mutate", bytes.NewReader([]byte("SCD1\x05")))
		req.Header.Set("Content-Type", "application/octet-stream")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest || decodeError(t, rec).Kind != "bad_input" {
			t.Fatalf("%d %s", rec.Code, rec.Body.String())
		}
	})
	t.Run("unknown op is 400", func(t *testing.T) {
		rec := do(t, s, http.MethodPost, "/v1/mutate", mutateBody{Ops: []mutateOp{{Op: "upsert_edge"}}})
		if rec.Code != http.StatusBadRequest || decodeError(t, rec).Kind != "bad_input" {
			t.Fatalf("%d %s", rec.Code, rec.Body.String())
		}
	})
	t.Run("out of range is 400 and counted", func(t *testing.T) {
		before := s.Metrics().MutationsRejected.Load()
		rec := do(t, s, http.MethodPost, "/v1/mutate", mutateBody{Ops: []mutateOp{{Op: "add_edge", Src: 9999, Dst: 0}}})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%d %s", rec.Code, rec.Body.String())
		}
		if got := s.Metrics().MutationsRejected.Load(); got != before+1 {
			t.Fatalf("MutationsRejected %d, want %d", got, before+1)
		}
	})
	t.Run("no dynamic graph is 400", func(t *testing.T) {
		bare := newTestServer(t, Config{})
		rec := do(t, bare, http.MethodPost, "/v1/mutate", mutateBody{Ops: []mutateOp{{Op: "add_edge"}}})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%d %s", rec.Code, rec.Body.String())
		}
	})
	t.Run("dynamic infer without graph is 400", func(t *testing.T) {
		bare := newTestServer(t, Config{})
		rec := do(t, bare, http.MethodPost, "/v1/infer", inferBody{Model: "gcn", Dims: []int{8, 16, 8}, Graph: "dynamic"})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%d %s", rec.Code, rec.Body.String())
		}
	})
	t.Run("unknown graph source is 400", func(t *testing.T) {
		rec := do(t, s, http.MethodPost, "/v1/infer", inferBody{Model: "gcn", Dims: []int{8, 16, 8}, Graph: "frozen"})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%d %s", rec.Code, rec.Body.String())
		}
	})
}

// TestClassifyCompacting pins the 409 mapping: a mid-compaction rejection is
// retryable (conflict + Retry-After), not a client error.
func TestClassifyCompacting(t *testing.T) {
	code, kind := classify(dyn.ErrCompacting)
	if code != http.StatusConflict || kind != "compacting" {
		t.Fatalf("classify(ErrCompacting) = %d %q", code, kind)
	}
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.writeMapped(rec, fmt.Errorf("apply: %w", dyn.ErrCompacting))
	if rec.Code != http.StatusConflict {
		t.Fatalf("writeMapped code %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("409 must carry Retry-After")
	}
}

// TestDynamicInferSessionReuse: the direct path must share the session cache
// with the batched path (one session for both).
func TestDynamicInferSessionReuse(t *testing.T) {
	d := newDynGraph(t, dyn.Config{})
	s := newTestServer(t, Config{Dynamic: d})
	for i := 0; i < 3; i++ {
		rec := do(t, s, http.MethodPost, "/v1/infer", inferBody{Model: "gcn", Dims: []int{8, 16, 8}, Graph: "dynamic"})
		if rec.Code != http.StatusOK {
			t.Fatalf("%d %s", rec.Code, rec.Body.String())
		}
	}
	if got := s.Metrics().SessionsCreated.Load(); got != 1 {
		t.Fatalf("SessionsCreated = %d, want 1", got)
	}
	if got := s.Metrics().DynRequests.Load(); got != 3 {
		t.Fatalf("DynRequests = %d, want 3", got)
	}
	var _ scale.InferRequest // keep the scale import purposeful if helpers change
}
