package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"scale"
	"scale/internal/dyn"
	"scale/internal/fault"
	"scale/internal/graph"
	"scale/internal/shard"
	"scale/internal/tensor"
)

// errDraining marks work refused because the server is shutting down.
var errDraining = errors.New("serve: draining")

// inferBody is the POST /v1/infer request payload.
type inferBody struct {
	// Model and Dims select the session (see scale.Session).
	Model string `json:"model"`
	Dims  []int  `json:"dims"`
	// NumVertices, Edges, Features describe the graph (see
	// scale.InferRequest).
	NumVertices int         `json:"num_vertices"`
	Edges       [][2]int    `json:"edges"`
	Features    [][]float32 `json:"features"`
	// TimeoutMS is the per-request deadline; it maps to context
	// cancellation through core.ForwardContext. 0 means no extra deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Precision selects the execution tier: "" (the server's default
	// precision), "fp32", or "int8". Unknown values are 400 bad_input.
	Precision string `json:"precision,omitempty"`
	// Graph selects the graph source: "" runs the request-carried
	// edges/features; "dynamic" runs the server's mutable graph
	// (Config.Dynamic) and ignores NumVertices/Edges/Features.
	Graph string `json:"graph,omitempty"`
	// SampleFanout > 0 enables GraphSAGE-style fixed-fanout sampled
	// inference: each layer aggregates over at most SampleFanout
	// in-neighbors per vertex, drawn deterministically from SampleSeed.
	// Responses are byte-identical across worker counts and replays of
	// the same (seed, fanout) pair.
	SampleFanout int    `json:"sample_fanout,omitempty"`
	SampleSeed   uint64 `json:"sample_seed,omitempty"`
}

// inferResponse is the POST /v1/infer success payload.
type inferResponse struct {
	Model      string      `json:"model"`
	Precision  string      `json:"precision"`
	Embeddings [][]float32 `json:"embeddings"`
}

// simulateResponse is the POST /v1/simulate success payload: the timing
// report, plus — when the server fronts a shard pool — the NoC-costed
// cross-shard halo-exchange estimate for running that same workload sharded
// at the pool's shard count and topology.
type simulateResponse struct {
	scale.Report
	Sharding *shard.CommEstimate `json:"sharding,omitempty"`
}

// simulateBody is the POST /v1/simulate request payload. Accel selects the
// accelerator to simulate on: empty or "scale" runs the shared SCALE
// simulator; any internal/baseline backend name (awb-gcn, gcnax, regnn,
// flowgnn, i-gcn, systolic) runs that backend at the simulator's MAC budget.
// Unknown names map to 400 bad_input.
type simulateBody struct {
	Model   string `json:"model"`
	Dataset string `json:"dataset"`
	Accel   string `json:"accel,omitempty"`
}

// errorResponse is every non-2xx payload. Kind is a stable machine-readable
// classification: usage, bad_input, timeout, over_capacity, draining, panic,
// internal.
type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// healthResponse is the GET /healthz payload. The shard fields only appear
// on a pool-fronting server: Degraded means every worker's circuit breaker
// is open and infer requests are being served by the local single-process
// fallback (fp32 results stay bit-identical by construction).
type healthResponse struct {
	Status           string  `json:"status"`
	UptimeSeconds    float64 `json:"uptime_seconds"`
	Sessions         int     `json:"sessions"`
	QueueInUse       int     `json:"queue_in_use"`
	QueueDepth       int     `json:"queue_depth"`
	ShardWorkersLive *int    `json:"shard_workers_live,omitempty"`
	Degraded         *bool   `json:"degraded,omitempty"`
}

// classify maps an error to its HTTP status and error kind, in precedence
// order: contained panics are 500 even when the panic value wraps an input
// sentinel, deadlines are 408, drain refusals 503, a mid-compaction
// dynamic graph 409 (retryable — the batch itself may be fine), input
// sentinels 400.
func classify(err error) (int, string) {
	if err == nil {
		return http.StatusOK, ""
	}
	if _, ok := fault.AsPanic(err); ok {
		return http.StatusInternalServerError, "panic"
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout, "timeout"
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, dyn.ErrCompacting):
		return http.StatusConflict, "compacting"
	case fault.IsInput(err):
		return http.StatusBadRequest, "bad_input"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

func writeError(w http.ResponseWriter, code int, msg, kind string) {
	writeJSON(w, code, errorResponse{Error: msg, Kind: kind})
}

// writeMapped renders err through classify, attaching Retry-After to
// load-shedding (and mid-compaction) answers.
func (s *Server) writeMapped(w http.ResponseWriter, err error) {
	code, kind := classify(err)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable || code == http.StatusConflict {
		w.Header().Set("Retry-After", retrySeconds(s.cfg.RetryAfter))
	}
	writeError(w, code, err.Error(), kind)
}

func retrySeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// statusRecorder captures the status code a handler sent, for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// instrument wraps an endpoint with latency/status accounting and a panic
// barrier: a panic inside the handler itself (not just the backend) is
// contained into a 500 — the serving process never dies for one request.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		err := fault.Safely(func() error {
			h(rec, r)
			return nil
		})
		if err != nil {
			s.metrics.PanicsContained.Add(1)
			if !rec.wrote {
				rec.code = http.StatusInternalServerError
				writeError(rec, http.StatusInternalServerError, err.Error(), "panic")
			}
		}
		s.metrics.ObserveRequest(endpoint, rec.code, time.Since(start))
	}
}

// handleInfer serves POST /v1/infer: admission queue → session cache →
// micro-batcher → batched forward → per-request embeddings.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required", "usage")
		return
	}
	if !s.begin() {
		s.writeMapped(w, errDraining)
		return
	}
	defer s.end()
	if !s.queue.tryAcquire() {
		s.metrics.QueueRejections.Add(1)
		w.Header().Set("Retry-After", retrySeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "admission queue full", "over_capacity")
		return
	}
	defer s.queue.release()

	var body inferBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON body: "+err.Error(), "bad_input")
		return
	}
	if body.NumVertices > s.cfg.MaxVertices {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("request has %d vertices, server caps at %d", body.NumVertices, s.cfg.MaxVertices),
			"bad_input")
		return
	}

	// Normalize the precision before the cache lookup so "", the server
	// default, and an explicit "fp32" all share one session. Unknown
	// values flow into NewSessionPrecision, whose typed error maps to 400.
	precision := body.Precision
	if precision == "" {
		precision = s.cfg.DefaultPrecision
	}
	if precision == "" {
		precision = "fp32"
	}
	// Dynamic-graph and sampled requests run directly: the dynamic vertex
	// set is the server's own, and per-request sampling seeds bind to
	// request-local vertex ids — disjoint-union micro-batching (which
	// shifts ids) and shard routing do not apply to either.
	if body.Graph == "dynamic" || body.SampleFanout > 0 {
		if body.Graph != "" && body.Graph != "dynamic" {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown graph source %q", body.Graph), "bad_input")
			return
		}
		s.handleInferDirect(w, r, body, precision)
		return
	}
	if body.Graph != "" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown graph source %q", body.Graph), "bad_input")
		return
	}
	if s.cfg.ShardPool != nil && body.NumVertices >= s.cfg.ShardMinVertices {
		s.handleInferSharded(w, r, body, precision)
		return
	}
	s.inferLocal(w, r, body, precision)
}

// inferLocal serves one infer request on this process: session cache →
// micro-batcher → batched forward. It is the non-sharded path of
// handleInfer and the degraded-mode fallback of the sharded one.
func (s *Server) inferLocal(w http.ResponseWriter, r *http.Request, body inferBody, precision string) {
	entry, err := s.session(body.Model, body.Dims, precision)
	if err != nil {
		s.writeMapped(w, err)
		return
	}
	req := scale.InferRequest{NumVertices: body.NumVertices, Edges: body.Edges, Features: body.Features}
	// Validate before batching: a malformed request earns its 400 here and
	// never poisons batch-mates.
	if err := entry.sess.Validate(req); err != nil {
		entry.refs.Done()
		s.writeMapped(w, err)
		return
	}
	ctx := r.Context()
	cancel := func() {}
	if body.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(body.TimeoutMS)*time.Millisecond)
	}
	defer cancel()

	p := &pending{req: req, ctx: ctx, done: make(chan batchResult, 1)}
	entry.b.submit(p)
	entry.refs.Done()

	select {
	case res := <-p.done:
		if res.err != nil {
			s.writeMapped(w, res.err)
			return
		}
		writeJSON(w, http.StatusOK, inferResponse{Model: entry.sess.Model(), Precision: entry.sess.Precision(), Embeddings: res.rows})
	case <-ctx.Done():
		s.writeMapped(w, ctx.Err())
	}
}

// handleInferSharded serves an infer request over the shard worker tier:
// the graph is materialized, partitioned, and fanned across the pool's
// workers layer by layer. The response shape is exactly handleInfer's local
// path — at fp32 the two are byte-identical (TestShardedServingGolden) —
// and the front tier in the healthy case never builds a model: weights live
// only on workers.
//
// Degraded mode: when the pool has no live workers (every breaker open), or
// the pass fails for an infrastructure reason retrying cannot fix here, the
// request falls back to local single-process inference instead of failing —
// fp32 answers are bit-identical either way, so the client only sees the
// difference in /healthz and the scale_serve_degraded gauge.
func (s *Server) handleInferSharded(w http.ResponseWriter, r *http.Request, body inferBody, precision string) {
	if err := validateShardBody(&body); err != nil {
		s.writeMapped(w, err)
		return
	}
	if s.cfg.ShardPool.Degraded() {
		s.serveDegraded(w, r, body, precision)
		return
	}
	b := graph.NewBuilder(body.NumVertices)
	for _, e := range body.Edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build("user")
	x := tensor.NewMatrix(body.NumVertices, body.Dims[0])
	for v, row := range body.Features {
		copy(x.Row(v), row)
	}

	ctx := r.Context()
	cancel := func() {}
	if body.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(body.TimeoutMS)*time.Millisecond)
	}
	defer cancel()

	out, _, err := s.cfg.ShardPool.Run(ctx, shard.SessionSpec{Model: body.Model, Dims: body.Dims, Precision: precision}, g, x)
	if err != nil {
		if fallbackEligible(err) {
			s.serveDegraded(w, r, body, precision)
			return
		}
		s.writeMapped(w, err)
		return
	}
	rows := make([][]float32, out.Rows)
	for v := range rows {
		rows[v] = out.Row(v)
	}
	writeJSON(w, http.StatusOK, inferResponse{Model: body.Model, Precision: precision, Embeddings: rows})
}

// serveDegraded answers one sharded-path request on the local session cache.
func (s *Server) serveDegraded(w http.ResponseWriter, r *http.Request, body inferBody, precision string) {
	s.metrics.DegradedRequests.Add(1)
	s.inferLocal(w, r, body, precision)
}

// fallbackEligible decides whether a failed sharded pass may be retried
// locally: infrastructure failures (workers unreachable, every candidate
// exhausted) are; the caller's own problems are not — bad input must keep
// its 400, a spent deadline its 408, and a contained panic its 500 (the
// panic would likely reproduce locally).
func fallbackEligible(err error) bool {
	if err == nil {
		return false
	}
	if _, ok := fault.AsPanic(err); ok {
		return false
	}
	if fault.IsInput(err) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

// validateShardBody mirrors scale.Session.Validate for the sharded path,
// which has no local session to ask: same checks, same sentinels, so both
// paths answer identical 400s.
func validateShardBody(body *inferBody) error {
	if body.NumVertices < 1 {
		return fmt.Errorf("scale: need at least one vertex, got %d: %w", body.NumVertices, fault.ErrBadGraph)
	}
	if len(body.Dims) < 2 {
		return fmt.Errorf("scale: dims chain has %d entries, need ≥2: %w", len(body.Dims), fault.ErrBadConfig)
	}
	for i, e := range body.Edges {
		if e[0] < 0 || e[0] >= body.NumVertices || e[1] < 0 || e[1] >= body.NumVertices {
			return fmt.Errorf("scale: edge %d (%d→%d) outside [0, %d): %w", i, e[0], e[1], body.NumVertices, fault.ErrBadGraph)
		}
	}
	if len(body.Features) != body.NumVertices {
		return fmt.Errorf("scale: %d feature rows for %d vertices: %w", len(body.Features), body.NumVertices, fault.ErrBadShape)
	}
	for v, row := range body.Features {
		if len(row) != body.Dims[0] {
			return fmt.Errorf("scale: feature row %d has %d values, model wants %d: %w", v, len(row), body.Dims[0], fault.ErrBadShape)
		}
	}
	return nil
}

// handleSimulate serves POST /v1/simulate: one timing-model run of (model,
// dataset) on the shared simulator, reported as a scale.Report.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required", "usage")
		return
	}
	if !s.begin() {
		s.writeMapped(w, errDraining)
		return
	}
	defer s.end()
	if !s.queue.tryAcquire() {
		s.metrics.QueueRejections.Add(1)
		w.Header().Set("Retry-After", retrySeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "admission queue full", "over_capacity")
		return
	}
	defer s.queue.release()

	var body simulateBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON body: "+err.Error(), "bad_input")
		return
	}
	report, err := s.cfg.Sim.SimulateOn(body.Accel, body.Model, body.Dataset)
	if err != nil {
		s.writeMapped(w, err)
		return
	}
	resp := simulateResponse{Report: report}
	if s.cfg.ShardPool != nil {
		if est, err := s.shardEstimate(body.Dataset, report.Cycles); err == nil {
			resp.Sharding = est
		}
		// Estimate failures (e.g. a dataset with no generator) degrade to
		// the plain report rather than failing the simulate call.
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardEstimate partitions the dataset's generated graph at the pool's shard
// count and costs the halo exchange against the simulated single-device
// cycle count. Feature rows move at fp32 width — the sharded data plane
// exchanges float32 activations in both precision tiers.
func (s *Server) shardEstimate(dataset string, cycles int64) (*shard.CommEstimate, error) {
	d, err := graph.ByName(dataset)
	if err != nil {
		return nil, err
	}
	plan, err := shard.PartitionGraph(d.Build(), s.cfg.ShardPool.Parts())
	if err != nil {
		return nil, err
	}
	return shard.EstimateComm(plan, d.FeatureDims, 4, s.cfg.ShardPool.Topology(), cycles)
}

// handleHealthz answers 200 while serving and 503 while draining, so load
// balancers stop routing before shutdown completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	resp := healthResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Sessions:      s.LiveSessions(),
		QueueInUse:    s.queue.inUse(),
		QueueDepth:    s.queue.depth(),
	}
	if s.cfg.ShardPool != nil {
		live := s.cfg.ShardPool.LiveWorkers()
		degraded := s.cfg.ShardPool.Degraded()
		resp.ShardWorkersLive = &live
		resp.Degraded = &degraded
		if degraded {
			// Still 200: the node serves every request via the local
			// fallback; load balancers should keep routing here.
			status = "degraded"
		}
	}
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	resp.Status = status
	writeJSON(w, code, resp)
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.Render(w, s.LiveSessions())
	if s.cfg.Dynamic != nil {
		writeDynMetrics(w, s.cfg.Dynamic.Stats())
	}
	if s.cfg.ShardPool != nil {
		degraded := 0
		if s.cfg.ShardPool.Degraded() {
			degraded = 1
		}
		fmt.Fprintf(w, "# HELP scale_serve_degraded Whether the shard pool has no live workers and infers run on the local fallback.\n# TYPE scale_serve_degraded gauge\nscale_serve_degraded %d\n", degraded)
		s.cfg.ShardPool.WritePrometheus(w)
	}
}
