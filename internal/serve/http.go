package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"scale"
	"scale/internal/fault"
)

// errDraining marks work refused because the server is shutting down.
var errDraining = errors.New("serve: draining")

// inferBody is the POST /v1/infer request payload.
type inferBody struct {
	// Model and Dims select the session (see scale.Session).
	Model string `json:"model"`
	Dims  []int  `json:"dims"`
	// NumVertices, Edges, Features describe the graph (see
	// scale.InferRequest).
	NumVertices int         `json:"num_vertices"`
	Edges       [][2]int    `json:"edges"`
	Features    [][]float32 `json:"features"`
	// TimeoutMS is the per-request deadline; it maps to context
	// cancellation through core.ForwardContext. 0 means no extra deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Precision selects the execution tier: "" (the server's default
	// precision), "fp32", or "int8". Unknown values are 400 bad_input.
	Precision string `json:"precision,omitempty"`
}

// inferResponse is the POST /v1/infer success payload.
type inferResponse struct {
	Model      string      `json:"model"`
	Precision  string      `json:"precision"`
	Embeddings [][]float32 `json:"embeddings"`
}

// simulateBody is the POST /v1/simulate request payload. Accel selects the
// accelerator to simulate on: empty or "scale" runs the shared SCALE
// simulator; any internal/baseline backend name (awb-gcn, gcnax, regnn,
// flowgnn, i-gcn, systolic) runs that backend at the simulator's MAC budget.
// Unknown names map to 400 bad_input.
type simulateBody struct {
	Model   string `json:"model"`
	Dataset string `json:"dataset"`
	Accel   string `json:"accel,omitempty"`
}

// errorResponse is every non-2xx payload. Kind is a stable machine-readable
// classification: usage, bad_input, timeout, over_capacity, draining, panic,
// internal.
type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// healthResponse is the GET /healthz payload.
type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Sessions      int     `json:"sessions"`
	QueueInUse    int     `json:"queue_in_use"`
	QueueDepth    int     `json:"queue_depth"`
}

// classify maps an error to its HTTP status and error kind, in precedence
// order: contained panics are 500 even when the panic value wraps an input
// sentinel, deadlines are 408, drain refusals 503, input sentinels 400.
func classify(err error) (int, string) {
	if err == nil {
		return http.StatusOK, ""
	}
	if _, ok := fault.AsPanic(err); ok {
		return http.StatusInternalServerError, "panic"
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout, "timeout"
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, "draining"
	case fault.IsInput(err):
		return http.StatusBadRequest, "bad_input"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

func writeError(w http.ResponseWriter, code int, msg, kind string) {
	writeJSON(w, code, errorResponse{Error: msg, Kind: kind})
}

// writeMapped renders err through classify, attaching Retry-After to
// load-shedding answers.
func (s *Server) writeMapped(w http.ResponseWriter, err error) {
	code, kind := classify(err)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retrySeconds(s.cfg.RetryAfter))
	}
	writeError(w, code, err.Error(), kind)
}

func retrySeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// statusRecorder captures the status code a handler sent, for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// instrument wraps an endpoint with latency/status accounting and a panic
// barrier: a panic inside the handler itself (not just the backend) is
// contained into a 500 — the serving process never dies for one request.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		err := fault.Safely(func() error {
			h(rec, r)
			return nil
		})
		if err != nil {
			s.metrics.PanicsContained.Add(1)
			if !rec.wrote {
				rec.code = http.StatusInternalServerError
				writeError(rec, http.StatusInternalServerError, err.Error(), "panic")
			}
		}
		s.metrics.ObserveRequest(endpoint, rec.code, time.Since(start))
	}
}

// handleInfer serves POST /v1/infer: admission queue → session cache →
// micro-batcher → batched forward → per-request embeddings.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required", "usage")
		return
	}
	if !s.begin() {
		s.writeMapped(w, errDraining)
		return
	}
	defer s.end()
	if !s.queue.tryAcquire() {
		s.metrics.QueueRejections.Add(1)
		w.Header().Set("Retry-After", retrySeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "admission queue full", "over_capacity")
		return
	}
	defer s.queue.release()

	var body inferBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON body: "+err.Error(), "bad_input")
		return
	}
	if body.NumVertices > s.cfg.MaxVertices {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("request has %d vertices, server caps at %d", body.NumVertices, s.cfg.MaxVertices),
			"bad_input")
		return
	}

	// Normalize the precision before the cache lookup so "", the server
	// default, and an explicit "fp32" all share one session. Unknown
	// values flow into NewSessionPrecision, whose typed error maps to 400.
	precision := body.Precision
	if precision == "" {
		precision = s.cfg.DefaultPrecision
	}
	if precision == "" {
		precision = "fp32"
	}
	entry, err := s.session(body.Model, body.Dims, precision)
	if err != nil {
		s.writeMapped(w, err)
		return
	}
	req := scale.InferRequest{NumVertices: body.NumVertices, Edges: body.Edges, Features: body.Features}
	// Validate before batching: a malformed request earns its 400 here and
	// never poisons batch-mates.
	if err := entry.sess.Validate(req); err != nil {
		entry.refs.Done()
		s.writeMapped(w, err)
		return
	}
	ctx := r.Context()
	cancel := func() {}
	if body.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(body.TimeoutMS)*time.Millisecond)
	}
	defer cancel()

	p := &pending{req: req, ctx: ctx, done: make(chan batchResult, 1)}
	entry.b.submit(p)
	entry.refs.Done()

	select {
	case res := <-p.done:
		if res.err != nil {
			s.writeMapped(w, res.err)
			return
		}
		writeJSON(w, http.StatusOK, inferResponse{Model: entry.sess.Model(), Precision: entry.sess.Precision(), Embeddings: res.rows})
	case <-ctx.Done():
		s.writeMapped(w, ctx.Err())
	}
}

// handleSimulate serves POST /v1/simulate: one timing-model run of (model,
// dataset) on the shared simulator, reported as a scale.Report.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required", "usage")
		return
	}
	if !s.begin() {
		s.writeMapped(w, errDraining)
		return
	}
	defer s.end()
	if !s.queue.tryAcquire() {
		s.metrics.QueueRejections.Add(1)
		w.Header().Set("Retry-After", retrySeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "admission queue full", "over_capacity")
		return
	}
	defer s.queue.release()

	var body simulateBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON body: "+err.Error(), "bad_input")
		return
	}
	report, err := s.cfg.Sim.SimulateOn(body.Accel, body.Model, body.Dataset)
	if err != nil {
		s.writeMapped(w, err)
		return
	}
	writeJSON(w, http.StatusOK, report)
}

// handleHealthz answers 200 while serving and 503 while draining, so load
// balancers stop routing before shutdown completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthResponse{
		Status:        status,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Sessions:      s.LiveSessions(),
		QueueInUse:    s.queue.inUse(),
		QueueDepth:    s.queue.depth(),
	})
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.Render(w, s.LiveSessions())
}
