package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning the
// sub-millisecond cached-session hits through multi-second Reddit-scale
// batched forwards.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram. Observations and rendering
// are lock-free; the +Inf bucket lives at counts[len(bounds)].
type histogram struct {
	counts  []atomic.Int64
	sumNs   atomic.Int64
	samples atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, s)
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.samples.Add(1)
}

// sessionPrecision is one cached session's precision statistics, exposed as
// per-session gauges so operators can see what precision each cached
// session runs at (internal/quant.Plan footprint semantics: compression is
// bytes versus full float32, avgBytes the average bytes per weight element).
type sessionPrecision struct {
	precision   string
	compression float64
	avgBytes    float64
}

// Metrics holds the server's counters. All fields are safe for concurrent
// use; Render emits them in Prometheus text exposition format with
// deterministic ordering.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]*atomic.Int64    // "endpoint|code" → count
	latency  map[string]*histogram       // endpoint → latency histogram
	sessions map[string]sessionPrecision // session key → precision gauges

	// Batches counts executed micro-batches; BatchedRequests counts the
	// requests they carried (ratio = mean batch size).
	Batches         atomic.Int64
	BatchedRequests atomic.Int64
	// QueueRejections counts 429s from the bounded admission queue.
	QueueRejections atomic.Int64
	// DegradedRequests counts sharded-path requests served by the local
	// single-process fallback because the worker pool was unavailable.
	DegradedRequests atomic.Int64
	// PanicsContained counts backend panics isolated into 500s.
	PanicsContained atomic.Int64
	// SessionsCreated and SessionsEvicted track the session cache.
	SessionsCreated atomic.Int64
	SessionsEvicted atomic.Int64
	// MutationBatches / MutationOps count accepted /v1/mutate batches and
	// the individual deltas they carried; MutationsRejected counts batches
	// refused (malformed input or mid-compaction 409s).
	MutationBatches   atomic.Int64
	MutationOps       atomic.Int64
	MutationsRejected atomic.Int64
	// DynRequests counts infer requests served from the dynamic graph;
	// SampledRequests counts fixed-fanout sampled infers (either source).
	DynRequests     atomic.Int64
	SampledRequests atomic.Int64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests: make(map[string]*atomic.Int64),
		latency:  make(map[string]*histogram),
		sessions: make(map[string]sessionPrecision),
	}
}

// SetSessionPrecision registers (or refreshes) one cached session's
// precision gauges under its cache key.
func (m *Metrics) SetSessionPrecision(key, precision string, compression, avgBytes float64) {
	m.mu.Lock()
	m.sessions[key] = sessionPrecision{precision: precision, compression: compression, avgBytes: avgBytes}
	m.mu.Unlock()
}

// DeleteSessionPrecision drops an evicted session's gauges.
func (m *Metrics) DeleteSessionPrecision(key string) {
	m.mu.Lock()
	delete(m.sessions, key)
	m.mu.Unlock()
}

// ObserveRequest records one finished request: its endpoint, the HTTP status
// sent, and the wall time spent serving it.
func (m *Metrics) ObserveRequest(endpoint string, code int, d time.Duration) {
	key := fmt.Sprintf("%s|%d", endpoint, code)
	m.mu.Lock()
	c, ok := m.requests[key]
	if !ok {
		c = new(atomic.Int64)
		m.requests[key] = c
	}
	h, ok := m.latency[endpoint]
	if !ok {
		h = newHistogram()
		m.latency[endpoint] = h
	}
	m.mu.Unlock()
	c.Add(1)
	h.observe(d)
}

// ObserveBatch records one executed micro-batch of n requests.
func (m *Metrics) ObserveBatch(n int) {
	m.Batches.Add(1)
	m.BatchedRequests.Add(int64(n))
}

// RequestCount returns the number of requests finished with the given
// endpoint and status code (test and ops introspection).
func (m *Metrics) RequestCount(endpoint string, code int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.requests[fmt.Sprintf("%s|%d", endpoint, code)]; ok {
		return c.Load()
	}
	return 0
}

// Render writes the metrics in Prometheus text exposition format.
func (m *Metrics) Render(w io.Writer, liveSessions int) {
	m.mu.Lock()
	reqKeys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	latKeys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		latKeys = append(latKeys, k)
	}
	m.mu.Unlock()
	sort.Strings(reqKeys)
	sort.Strings(latKeys)

	fmt.Fprintln(w, "# HELP scale_serve_requests_total Finished requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE scale_serve_requests_total counter")
	for _, k := range reqKeys {
		endpoint, code, _ := strings.Cut(k, "|")
		m.mu.Lock()
		v := m.requests[k].Load()
		m.mu.Unlock()
		fmt.Fprintf(w, "scale_serve_requests_total{endpoint=%q,code=%q} %d\n", endpoint, code, v)
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("scale_serve_batches_total", "Micro-batches executed.", m.Batches.Load())
	counter("scale_serve_batch_requests_total", "Requests carried by micro-batches.", m.BatchedRequests.Load())
	counter("scale_serve_queue_rejections_total", "Requests rejected by the admission queue (429).", m.QueueRejections.Load())
	counter("scale_serve_degraded_requests_total", "Sharded-path requests served by the local single-process fallback.", m.DegradedRequests.Load())
	counter("scale_serve_panics_contained_total", "Backend panics isolated into 500 responses.", m.PanicsContained.Load())
	counter("scale_serve_sessions_created_total", "Sessions constructed by the cache.", m.SessionsCreated.Load())
	counter("scale_serve_sessions_evicted_total", "Sessions evicted by the cache.", m.SessionsEvicted.Load())
	counter("scale_serve_mutation_batches_total", "Accepted /v1/mutate batches.", m.MutationBatches.Load())
	counter("scale_serve_mutation_ops_total", "Individual graph deltas applied via /v1/mutate.", m.MutationOps.Load())
	counter("scale_serve_mutations_rejected_total", "Mutation batches refused (bad input or mid-compaction).", m.MutationsRejected.Load())
	counter("scale_serve_dyn_requests_total", "Infer requests served from the dynamic graph.", m.DynRequests.Load())
	counter("scale_serve_sampled_requests_total", "Fixed-fanout sampled infer requests.", m.SampledRequests.Load())
	fmt.Fprintf(w, "# HELP scale_serve_sessions_live Sessions currently cached.\n# TYPE scale_serve_sessions_live gauge\nscale_serve_sessions_live %d\n", liveSessions)

	m.mu.Lock()
	sessKeys := make([]string, 0, len(m.sessions))
	for k := range m.sessions {
		sessKeys = append(sessKeys, k)
	}
	sort.Strings(sessKeys)
	fmt.Fprintln(w, "# HELP scale_serve_session_quant_compression Weight-footprint ratio vs full float32 per cached session (1 = fp32, 0.25 = fully int8).")
	fmt.Fprintln(w, "# TYPE scale_serve_session_quant_compression gauge")
	for _, k := range sessKeys {
		sp := m.sessions[k]
		fmt.Fprintf(w, "scale_serve_session_quant_compression{session=%q,precision=%q} %g\n", k, sp.precision, sp.compression)
	}
	fmt.Fprintln(w, "# HELP scale_serve_session_quant_avg_bytes Average bytes per weight element per cached session.")
	fmt.Fprintln(w, "# TYPE scale_serve_session_quant_avg_bytes gauge")
	for _, k := range sessKeys {
		sp := m.sessions[k]
		fmt.Fprintf(w, "scale_serve_session_quant_avg_bytes{session=%q,precision=%q} %g\n", k, sp.precision, sp.avgBytes)
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP scale_serve_request_seconds Request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE scale_serve_request_seconds histogram")
	for _, endpoint := range latKeys {
		m.mu.Lock()
		h := m.latency[endpoint]
		m.mu.Unlock()
		var cum int64
		for i, bound := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "scale_serve_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", endpoint, bound, cum)
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "scale_serve_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", endpoint, cum)
		fmt.Fprintf(w, "scale_serve_request_seconds_sum{endpoint=%q} %g\n", endpoint, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(w, "scale_serve_request_seconds_count{endpoint=%q} %d\n", endpoint, h.samples.Load())
	}
}
