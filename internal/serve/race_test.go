package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scale"
	"scale/internal/bench/faultinject"
)

// TestServeStress is the concurrency soak for the serving layer, run under
// `make race`: many client goroutines across mixed sessions (with a cache
// small enough to force eviction churn), a poisoned session whose backend
// panics on every batch, and a mid-flight drain. The server must answer
// every request with one of the contract's statuses, contain every panic,
// and shut down without leaking a goroutine or dropping a handler.
func TestServeStress(t *testing.T) {
	const (
		workers    = 12
		perWorker  = 8
		poisonEach = 5 // every 5th request goes to the poisoned session
	)
	plan := faultinject.Plan{0: {Kind: faultinject.Panic, Value: "stress panic"}}
	poisonDims := []int{2, 2}
	backend := func(ctx context.Context, sess *scale.Session, reqs []scale.InferRequest) ([][][]float32, error) {
		if d := sess.Dims(); len(d) == 2 && d[1] == poisonDims[1] && sess.Model() == "gin" {
			if err := plan.Wrap(func(int) error { return nil })(0); err != nil {
				return nil, err
			}
		}
		return sess.InferBatch(ctx, reqs)
	}
	s := New(Config{
		Sim:         testSim(t),
		MaxSessions: 2, // 4 live session keys → constant eviction churn
		BatchWindow: 500 * time.Microsecond,
		MaxBatch:    4,
		QueueDepth:  workers,
		Backend:     backend,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Serial reference for the systolic timing path: every concurrent 200
	// from the same /v1/simulate request must serialize to these bytes.
	sysBody := simulateBody{Model: "gcn", Dataset: "cora", Accel: "systolic"}
	refRec := do(t, s, "POST", "/v1/simulate", sysBody)
	if refRec.Code != http.StatusOK {
		t.Fatalf("systolic simulate = %d (%s)", refRec.Code, refRec.Body.String())
	}
	sysRef := append([]byte(nil), refRec.Body.Bytes()...)

	sessions := []inferBody{
		{Model: "gcn", Dims: []int{3, 3}},
		{Model: "gat", Dims: []int{3, 4}},
		{Model: "gin", Dims: []int{3, 3}},
		{Model: "gin", Dims: poisonDims}, // the poisoned one
	}
	var (
		wg       sync.WaitGroup
		codes    [6]atomic.Int64 // 200, 400, 408, 429, 500, 503
		badCode  atomic.Int64
		started  = make(chan struct{})
		inFlight sync.WaitGroup
		sysOK    atomic.Int64
	)
	record := func(code int) {
		switch code {
		case 200:
			codes[0].Add(1)
		case 400:
			codes[1].Add(1)
		case 408:
			codes[2].Add(1)
		case 429:
			codes[3].Add(1)
		case 500:
			codes[4].Add(1)
		case 503:
			codes[5].Add(1)
		default:
			badCode.Store(int64(code))
		}
	}
	client := ts.Client()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		inFlight.Add(1)
		go func(w int) {
			defer wg.Done()
			<-started
			for i := 0; i < perWorker; i++ {
				var body inferBody
				if (w*perWorker+i)%poisonEach == 0 {
					body = sessions[3]
				} else {
					body = sessions[(w+i)%3]
				}
				req := testGraph(int64(w*100+i), 5+i, 1+i%2, body.Dims[0])
				body.NumVertices = req.NumVertices
				body.Edges = req.Edges
				body.Features = req.Features
				rec := do(t, s, "POST", "/v1/infer", body)
				record(rec.Code)
				// Interleave systolic timing runs with the infer traffic:
				// /v1/simulate shares the drain/queue machinery, and its
				// answers must not depend on what else is in flight.
				if i%2 == 0 {
					sr := do(t, s, "POST", "/v1/simulate", sysBody)
					record(sr.Code)
					if sr.Code == http.StatusOK {
						sysOK.Add(1)
						if !bytes.Equal(sr.Body.Bytes(), sysRef) {
							t.Errorf("concurrent systolic simulate diverged from serial reference:\n  serial: %s\n  got:    %s",
								sysRef, sr.Body.Bytes())
						}
					}
				}
				if i == perWorker/2 {
					inFlight.Done() // half-way marker: drain starts mid-flight
				}
			}
		}(w)
	}
	close(started)
	inFlight.Wait() // every worker is mid-stream
	s.BeginDrain()
	// Deterministic drain checks while workers are still firing: a real
	// network request sees the 503 health flip, and a fresh API request is
	// refused with the draining contract.
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d", resp.StatusCode)
	}
	drained := do(t, s, "POST", "/v1/infer", validInfer())
	if drained.Code != http.StatusServiceUnavailable {
		t.Fatalf("infer during drain = %d", drained.Code)
	}
	wg.Wait()
	s.Close()

	if n := badCode.Load(); n != 0 {
		t.Fatalf("response outside the status contract: %d", n)
	}
	if codes[0].Load() == 0 {
		t.Fatal("no request succeeded before the drain")
	}
	if sysOK.Load() == 0 {
		t.Fatal("no systolic simulate succeeded under stress")
	}
	if codes[4].Load() == 0 {
		t.Fatal("poisoned session produced no contained 500s")
	}
	if got, contained := codes[4].Load(), s.Metrics().PanicsContained.Load(); contained == 0 || contained > got {
		t.Fatalf("panics contained = %d for %d panic 500s", contained, got)
	}
	if live := s.LiveSessions(); live != 0 {
		t.Fatalf("sessions alive after close: %d", live)
	}
}

// TestServeSimulateDeterminism pins /v1/simulate byte-for-byte across
// concurrency: for every accelerator the endpoint exposes, the JSON answered
// serially and the JSON answered from 8 concurrent workers on the shared
// simulator must be identical.
func TestServeSimulateDeterminism(t *testing.T) {
	s := newTestServer(t, Config{})
	accels := []string{"scale", "systolic", "awb-gcn", "gcnax", "regnn", "flowgnn", "i-gcn"}
	ref := make(map[string][]byte, len(accels))
	for _, a := range accels {
		rec := do(t, s, "POST", "/v1/simulate", simulateBody{Model: "gcn", Dataset: "cora", Accel: a})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d (%s)", a, rec.Code, rec.Body.String())
		}
		ref[a] = append([]byte(nil), rec.Body.Bytes()...)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2*len(accels); i++ {
				a := accels[(w+i)%len(accels)]
				rec := do(t, s, "POST", "/v1/simulate", simulateBody{Model: "gcn", Dataset: "cora", Accel: a})
				if rec.Code != http.StatusOK {
					t.Errorf("%s: %d (%s)", a, rec.Code, rec.Body.String())
					return
				}
				if !bytes.Equal(rec.Body.Bytes(), ref[a]) {
					t.Errorf("%s: concurrent body diverged from serial:\n  serial: %s\n  worker: %s",
						a, ref[a], rec.Body.Bytes())
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
