package sched

import "math"

// PerfModel is the §IV-B analytical model used by the task controller to
// choose a batch size B such that task scheduling stays hidden behind task
// aggregation (t_ts < t_agg). All times are in cycles.
type PerfModel struct {
	// TOCM is the on-chip memory access latency t_ocm.
	TOCM float64
	// TReduce is the latency of one reduce operation t_reduce.
	TReduce float64
	// TComm is the inter-PE communication latency t_comm (one ring hop).
	TComm float64
}

// DefaultPerfModel returns single-cycle reduce and ring-hop latencies with a
// 4-wide scheduling unit (t_ocm = 0.25: the task scheduler's comparators
// operate on four table entries per cycle). The width is calibrated so that,
// as in Fig. 16(a), every Table II dataset becomes TS-Negligible by batch
// size ≈500 while small batches on low-degree/low-feature graphs stay
// TS-Bound.
func DefaultPerfModel() PerfModel {
	return PerfModel{TOCM: 0.25, TReduce: 1, TComm: 1}
}

// SchedulingCycles returns t_ts = ((B + T_n)·log(T_n) + T_n)·t_ocm.
func (m PerfModel) SchedulingCycles(batch, numTasks int) float64 {
	if numTasks < 2 {
		numTasks = 2
	}
	logT := math.Log2(float64(numTasks))
	return ((float64(batch)+float64(numTasks))*logT + float64(numTasks)) * m.TOCM
}

// AggregationCycles returns
// t_agg = (B·D_avg / T_n)·(t_reduce + t_comm)·F_n
// for a batch of B vertices with average degree davg, T_n parallel PEs, and
// F_n feature elements per vertex.
func (m PerfModel) AggregationCycles(batch int, davg float64, numTasks, features int) float64 {
	if numTasks < 1 {
		numTasks = 1
	}
	return float64(batch) * davg / float64(numTasks) * (m.TReduce + m.TComm) * float64(features)
}

// Ratio returns t_ts / t_agg, the Fig. 16(a) quantity: > 1 is TS-Bound
// (scheduling throttles the pipeline), < 1 is TS-Negligible.
func (m PerfModel) Ratio(batch int, davg float64, numTasks, features int) float64 {
	agg := m.AggregationCycles(batch, davg, numTasks, features)
	if agg == 0 {
		return math.Inf(1)
	}
	return m.SchedulingCycles(batch, numTasks) / agg
}

// MinBatch returns the smallest batch size (searched in powers-of-two steps
// then refined linearly) for which scheduling is hidden (ratio < 1), capped
// at maxBatch. Returns maxBatch if no batch satisfies the bound.
func (m PerfModel) MinBatch(davg float64, numTasks, features, maxBatch int) int {
	lo, hi := 1, maxBatch
	if m.Ratio(hi, davg, numTasks, features) >= 1 {
		return maxBatch
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if m.Ratio(mid, davg, numTasks, features) < 1 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
