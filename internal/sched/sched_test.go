package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scale/internal/graph"
)

func exampleDegrees() []int32 {
	// Fig. 8(a)-style degrees: one hub plus small-degree vertices,
	// 24 edges over 8 vertices.
	return []int32{2, 2, 3, 3, 3, 6, 3, 2}
}

func TestConfigValidate(t *testing.T) {
	if (Config{NumTasks: 0, NumGroups: 1}).Validate() == nil {
		t.Fatal("zero tasks must fail")
	}
	if (Config{NumTasks: 2, NumGroups: 3}).Validate() == nil {
		t.Fatal("groups > tasks must fail")
	}
	if (Config{NumTasks: 4, NumGroups: 2}).Validate() != nil {
		t.Fatal("valid config rejected")
	}
}

func TestScheduleRejectsBadVertices(t *testing.T) {
	_, err := Schedule([]int32{1, 2}, []int32{5}, Config{NumTasks: 2, NumGroups: 1})
	if err == nil {
		t.Fatal("out-of-range vertex must error")
	}
}

// The Fig. 8(d) walkthrough: 4 tasks over the example graph, grouped in
// pairs, gives each task ≈6 edges and each group ≈4 vertices.
func TestAlgorithm1Walkthrough(t *testing.T) {
	deg := exampleDegrees()
	groups, err := Schedule(deg, AllVertices(8), Config{NumTasks: 4, NumGroups: 2, Policy: DegreeVertexAware})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups: %d", len(groups))
	}
	for _, g := range groups {
		if g.Edges() < 10 || g.Edges() > 14 {
			t.Errorf("group %d edges = %d, want ≈12", g.ID, g.Edges())
		}
		if g.NumVertices() < 3 || g.NumVertices() > 5 {
			t.Errorf("group %d vertices = %d, want ≈4", g.ID, g.NumVertices())
		}
	}
	if eb := EdgeBalance(groups); eb < 0.8 {
		t.Errorf("edge balance %.2f too low", eb)
	}
	if vb := VertexBalance(groups); vb < 0.7 {
		t.Errorf("vertex balance %.2f too low", vb)
	}
}

// Every vertex is scheduled exactly once under every policy — the core
// correctness invariant (property-based).
func TestCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 8
		degrees := make([]int32, n)
		for i := range degrees {
			degrees[i] = int32(rng.Intn(20))
		}
		numTasks := rng.Intn(15) + 1
		numGroups := rng.Intn(numTasks) + 1
		for _, pol := range []Policy{DegreeVertexAware, DegreeAware, VertexAware} {
			groups, err := Schedule(degrees, AllVertices(n), Config{NumTasks: numTasks, NumGroups: numGroups, Policy: pol})
			if err != nil {
				return false
			}
			if len(groups) != numGroups {
				return false
			}
			seen := make(map[int32]int)
			var edges int64
			for _, g := range groups {
				for _, task := range g.Tasks {
					for _, v := range task.Vertices {
						seen[v]++
					}
					edges += task.Edges
				}
			}
			if len(seen) != n {
				return false
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
			var wantEdges int64
			for _, d := range degrees {
				wantEdges += int64(d)
			}
			if edges != wantEdges {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// First-fit bound: no task exceeds target + maxDegree (a vertex is atomic).
func TestFirstFitEdgeBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 16
		degrees := make([]int32, n)
		var total int64
		var maxDeg int64
		for i := range degrees {
			degrees[i] = int32(rng.Intn(40))
			total += int64(degrees[i])
			if int64(degrees[i]) > maxDeg {
				maxDeg = int64(degrees[i])
			}
		}
		numTasks := rng.Intn(16) + 2
		target := (total + int64(numTasks) - 1) / int64(numTasks)
		tasks := firstFit(degrees, AllVertices(n), numTasks, true)
		for _, task := range tasks {
			if task.Edges > target+maxDeg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The ablation contrast on a skewed real-shaped profile: DVS balances both
// dimensions; DS leaves vertices unbalanced; VS leaves edges unbalanced
// (Fig. 13b).
func TestPolicyContrast(t *testing.T) {
	p := graph.MustByName("cora").Profile()
	cfg := func(pol Policy) Config { return Config{NumTasks: 512, NumGroups: 32, Policy: pol} }
	dvs, err := Schedule(p.Degrees, AllVertices(p.NumVertices()), cfg(DegreeVertexAware))
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := Schedule(p.Degrees, AllVertices(p.NumVertices()), cfg(DegreeAware))
	vs, _ := Schedule(p.Degrees, AllVertices(p.NumVertices()), cfg(VertexAware))

	if eb := EdgeBalance(dvs); eb < 0.9 {
		t.Errorf("DVS edge balance %.3f, want ≥0.9", eb)
	}
	if vb := VertexBalance(dvs); vb < 0.85 {
		t.Errorf("DVS vertex balance %.3f, want ≥0.85", vb)
	}
	if eb := EdgeBalance(ds); eb < 0.9 {
		t.Errorf("DS edge balance %.3f, want ≥0.9", eb)
	}
	if vb := VertexBalance(vs); vb < 0.9 {
		t.Errorf("VS vertex balance %.3f, want ≥0.9", vb)
	}
	// The single-objective policies must be visibly worse on the other axis.
	if VertexBalance(ds) > VertexBalance(dvs) {
		t.Errorf("DS vertex balance %.3f should trail DVS %.3f", VertexBalance(ds), VertexBalance(dvs))
	}
	if EdgeBalance(vs) > 0.95*EdgeBalance(dvs) {
		t.Errorf("VS edge balance %.3f should trail DVS %.3f", EdgeBalance(vs), EdgeBalance(dvs))
	}
}

func TestBatches(t *testing.T) {
	bs := Batches(10, 4)
	if len(bs) != 3 || len(bs[0]) != 4 || len(bs[2]) != 2 {
		t.Fatalf("Batches: %v", bs)
	}
	if bs[2][1] != 9 {
		t.Fatalf("last batch contents: %v", bs[2])
	}
	if len(Batches(5, 0)) != 1 {
		t.Fatal("b<1 should yield one batch")
	}
}

func TestBalanceMetric(t *testing.T) {
	if Balance(nil) != 1 || Balance([]int64{0, 0}) != 1 {
		t.Fatal("degenerate balance should be 1")
	}
	if b := Balance([]int64{10, 10, 10}); b != 1 {
		t.Fatalf("perfect balance = %v", b)
	}
	if b := Balance([]int64{30, 0, 0}); b < 0.32 && b > 0.34 {
		t.Fatalf("skewed balance = %v", b)
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{DegreeVertexAware, DegreeAware, VertexAware} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}

func TestScheduleDeterminism(t *testing.T) {
	p := graph.MustByName("citeseer").Profile()
	cfg := Config{NumTasks: 64, NumGroups: 8, Policy: DegreeVertexAware}
	a, _ := Schedule(p.Degrees, AllVertices(p.NumVertices()), cfg)
	b, _ := Schedule(p.Degrees, AllVertices(p.NumVertices()), cfg)
	for i := range a {
		if a[i].Edges() != b[i].Edges() || a[i].NumVertices() != b[i].NumVertices() {
			t.Fatal("schedule not deterministic")
		}
	}
}
