package sched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"scale/internal/graph"
)

// schedulerTestConfigs spans the policy × shape space the simulator uses.
func schedulerTestConfigs() []Config {
	return []Config{
		{NumTasks: 512, NumGroups: 32, Policy: DegreeVertexAware},
		{NumTasks: 512, NumGroups: 32, Policy: DegreeAware},
		{NumTasks: 512, NumGroups: 512, Policy: VertexAware},
		{NumTasks: 64, NumGroups: 8, Policy: DegreeVertexAware},
	}
}

// A reused compact Scheduler must produce the same per-task and per-group
// loads as the pure materializing Schedule function, on every dataset ×
// policy × batch size — the equivalence that lets the timing engine drop
// vertex-id materialization entirely.
func TestSchedulerCompactMatchesMaterialized(t *testing.T) {
	for _, ds := range []string{"cora", "citeseer", "pubmed"} {
		p := graph.MustByName(ds).Profile()
		for _, cfg := range schedulerTestConfigs() {
			for _, batchSize := range []int{512, 1024, p.NumVertices()} {
				compact, err := NewScheduler(cfg, false)
				if err != nil {
					t.Fatal(err)
				}
				for bi, vb := range Batches(p.NumVertices(), batchSize) {
					want, err := Schedule(p.Degrees, vb, cfg)
					if err != nil {
						t.Fatal(err)
					}
					got, err := compact.Schedule(p.Degrees, vb)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s %v b=%d batch %d: %d groups, want %d",
							ds, cfg.Policy, batchSize, bi, len(got), len(want))
					}
					for gi := range want {
						if got[gi].Edges() != want[gi].Edges() ||
							got[gi].NumVertices() != want[gi].NumVertices() ||
							len(got[gi].Tasks) != len(want[gi].Tasks) {
							t.Fatalf("%s %v b=%d batch %d group %d: compact (e=%d v=%d t=%d) != materialized (e=%d v=%d t=%d)",
								ds, cfg.Policy, batchSize, bi, gi,
								got[gi].Edges(), got[gi].NumVertices(), len(got[gi].Tasks),
								want[gi].Edges(), want[gi].NumVertices(), len(want[gi].Tasks))
						}
						for ti := range want[gi].Tasks {
							gt, wt := got[gi].Tasks[ti], want[gi].Tasks[ti]
							if gt.Edges != wt.Edges || gt.NumVertices() != wt.NumVertices() {
								t.Fatalf("%s %v b=%d batch %d group %d task %d: compact (e=%d v=%d) != materialized (e=%d v=%d)",
									ds, cfg.Policy, batchSize, bi, gi, ti,
									gt.Edges, gt.NumVertices(), wt.Edges, wt.NumVertices())
							}
							if gt.Vertices != nil {
								t.Fatalf("compact task materialized %d vertex ids", len(gt.Vertices))
							}
						}
					}
				}
			}
		}
	}
}

// A reused materializing Scheduler must reproduce the pure Schedule function
// exactly, vertex id by vertex id, across many consecutive calls on recycled
// scratch.
func TestSchedulerMaterializedMatchesPureSchedule(t *testing.T) {
	p := graph.MustByName("citeseer").Profile()
	for _, cfg := range schedulerTestConfigs() {
		reused, err := NewScheduler(cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		for bi, vb := range Batches(p.NumVertices(), 700) {
			want, err := Schedule(p.Degrees, vb, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := reused.Schedule(p.Degrees, vb)
			if err != nil {
				t.Fatal(err)
			}
			for gi := range want {
				for ti := range want[gi].Tasks {
					gv := got[gi].Tasks[ti].Vertices
					wv := want[gi].Tasks[ti].Vertices
					if len(gv) != len(wv) {
						t.Fatalf("%v batch %d group %d task %d: %d vertices, want %d",
							cfg.Policy, bi, gi, ti, len(gv), len(wv))
					}
					for i := range wv {
						if gv[i] != wv[i] {
							t.Fatalf("%v batch %d group %d task %d vertex %d: %d, want %d",
								cfg.Policy, bi, gi, ti, i, gv[i], wv[i])
						}
					}
				}
			}
		}
	}
}

// The steady-state hot path must not allocate: after the first call has grown
// the scratch, Schedule is allocation-free in both compact and materializing
// modes.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	p := graph.MustByName("pubmed").Profile()
	batches := Batches(p.NumVertices(), 1024)
	for _, materialize := range []bool{false, true} {
		for _, cfg := range schedulerTestConfigs() {
			s, err := NewScheduler(cfg, materialize)
			if err != nil {
				t.Fatal(err)
			}
			// Warm-up pass grows order/Vertices/Tasks scratch to capacity.
			for _, vb := range batches {
				if _, err := s.Schedule(p.Degrees, vb); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(3, func() {
				for _, vb := range batches {
					if _, err := s.Schedule(p.Degrees, vb); err != nil {
						t.Fatal(err)
					}
				}
			})
			if allocs != 0 {
				t.Errorf("materialize=%v %v: %v allocs per full-layer schedule, want 0",
					materialize, cfg.Policy, allocs)
			}
		}
	}
}

// The counting sort must reproduce sort.SliceStable's permutation exactly
// (stable-sort output is unique given the less relation), including duplicate
// degrees and adversarial batch orders.
func TestCountingSortMatchesStableSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400) + 1
		degrees := make([]int32, n)
		for i := range degrees {
			// Mix a heavy tail in so bucket growth and sparse clearing
			// both trigger.
			if rng.Intn(10) == 0 {
				degrees[i] = int32(rng.Intn(100000))
			} else {
				degrees[i] = int32(rng.Intn(8))
			}
		}
		batch := make([]int32, rng.Intn(n)+1)
		for i := range batch {
			batch[i] = int32(rng.Intn(n))
		}
		want := make([]int32, len(batch))
		copy(want, batch)
		sort.SliceStable(want, func(i, j int) bool {
			return degrees[want[i]] > degrees[want[j]]
		})
		s, err := NewScheduler(Config{NumTasks: 4, NumGroups: 2}, false)
		if err != nil {
			t.Fatal(err)
		}
		// Two rounds on the same scheduler prove the restore-to-zero
		// invariant: a dirty counts table would corrupt round two.
		for round := 0; round < 2; round++ {
			if err := s.sortByDegreeDesc(degrees, batch); err != nil {
				return false
			}
			for i := range want {
				if s.order[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// A batch with an out-of-range vertex must fail without poisoning the
// scheduler: the counting-sort buckets are restored to zero on the error
// path, so the next valid call still matches a fresh scheduler.
func TestSchedulerRecoversAfterBatchError(t *testing.T) {
	p := graph.MustByName("cora").Profile()
	cfg := Config{NumTasks: 64, NumGroups: 8, Policy: DegreeVertexAware}
	s, err := NewScheduler(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	good := AllVertices(p.NumVertices())
	bad := append(append([]int32{}, good[:100]...), int32(p.NumVertices())+7)
	if _, err := s.Schedule(p.Degrees, bad); err == nil {
		t.Fatal("out-of-range vertex must error")
	}
	got, err := s.Schedule(p.Degrees, good)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Schedule(p.Degrees, good, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for gi := range want {
		if got[gi].Edges() != want[gi].Edges() || got[gi].NumVertices() != want[gi].NumVertices() {
			t.Fatalf("group %d after error: (e=%d v=%d), want (e=%d v=%d)",
				gi, got[gi].Edges(), got[gi].NumVertices(), want[gi].Edges(), want[gi].NumVertices())
		}
	}
}

// Groups returned by a Scheduler alias recycled scratch: the next call must
// overwrite them (documented contract — this pins the aliasing so a future
// "optimization" can't silently start copying).
func TestSchedulerGroupsAreRecycled(t *testing.T) {
	p := graph.MustByName("cora").Profile()
	s, err := NewScheduler(Config{NumTasks: 16, NumGroups: 4, Policy: DegreeVertexAware}, false)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Schedule(p.Degrees, AllVertices(1024))
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Schedule(p.Degrees, AllVertices(2048))
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] != &second[0] || first[0] != second[0] {
		t.Fatal("scheduler should recycle group storage across calls")
	}
}
