// Package sched implements the paper's degree and vertex-aware task
// scheduling (Algorithm 1, §IV) together with the pure degree-aware and pure
// vertex-aware policies used in the Fig. 13(b) ablation, and the §IV-B
// analytical model of scheduling latency versus aggregation latency that
// bounds the batch size (Fig. 16a).
//
// A Task is an edge-budgeted bin of vertices: its reduce operations run on
// one PE during the aggregation phase. A TaskGroup is the set of tasks
// assigned to one PE ring; the group's vertex count determines the ring's
// update-phase workload.
//
// No scheduling entry point mutates the degree slices or vertex sets it is
// given. The package-level Schedule function additionally builds its result
// in fresh allocations, so concurrent Schedule calls (the bench sweep engine
// issues them from many goroutines) need no synchronization; the reusable
// Scheduler trades that purity for an allocation-free steady state and is
// confined to one goroutine.
package sched

import "fmt"

// Task is a bin of vertices whose aggregations execute on one PE.
//
// The timing engine and the balance metrics consume only the task's vertex
// count and edge sum, so compact schedules (Scheduler's default) leave
// Vertices empty and carry just the counters; materialized schedules (the
// Schedule function, or NewScheduler with materialize=true) list the vertex
// ids explicitly for callers that execute or trace per-vertex work.
type Task struct {
	ID       int
	Vertices []int32 // vertex ids; empty in compact mode
	Edges    int64   // total in-degree of the task's vertices
	count    int     // vertex count, valid in both modes
}

// NumVertices returns the number of vertices in the task.
func (t *Task) NumVertices() int { return t.count }

// TaskGroup is the set of tasks mapped onto one PE ring.
type TaskGroup struct {
	ID    int
	Tasks []*Task
}

// Edges returns the group's total aggregation workload.
func (g *TaskGroup) Edges() int64 {
	var e int64
	for _, t := range g.Tasks {
		e += t.Edges
	}
	return e
}

// NumVertices returns the group's total update workload.
func (g *TaskGroup) NumVertices() int {
	n := 0
	for _, t := range g.Tasks {
		n += t.count
	}
	return n
}

// String summarizes the group.
func (g *TaskGroup) String() string {
	return fmt.Sprintf("Group(%d: tasks=%d vertices=%d edges=%d)", g.ID, len(g.Tasks), g.NumVertices(), g.Edges())
}

// Balance quantifies workload balance across a slice of per-unit loads as
// mean/max — exactly the PE-utilization metric of Fig. 13: 1.0 is perfect
// balance, lower values mean idle units waiting on the most loaded one.
func Balance(loads []int64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var sum, max int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if max == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(loads))
	return mean / float64(max)
}

// EdgeBalance returns the aggregation-phase balance across groups.
func EdgeBalance(groups []*TaskGroup) float64 {
	loads := make([]int64, len(groups))
	for i, g := range groups {
		loads[i] = g.Edges()
	}
	return Balance(loads)
}

// VertexBalance returns the update-phase balance across groups.
func VertexBalance(groups []*TaskGroup) float64 {
	loads := make([]int64, len(groups))
	for i, g := range groups {
		loads[i] = int64(g.NumVertices())
	}
	return Balance(loads)
}

// TaskEdgeBalance returns the aggregation balance across individual tasks
// (per-PE rather than per-ring granularity).
func TaskEdgeBalance(groups []*TaskGroup) float64 {
	var loads []int64
	for _, g := range groups {
		for _, t := range g.Tasks {
			loads = append(loads, t.Edges)
		}
	}
	return Balance(loads)
}
