package sched

import (
	"fmt"
	"math"
	"sort"
)

// Scheduler runs Algorithm 1 (and the ablation policies) with reusable
// scratch state: after the first call, Schedule performs no heap allocations
// in steady state. The per-batch degree sort is a stable counting sort keyed
// on the bounded int32 degrees (O(B + distinct degrees) instead of
// O(B log B) with a comparison sort), and tasks, groups, and all sorting
// scratch are owned by the Scheduler and recycled across calls.
//
// By default the Scheduler is *compact*: tasks carry only vertex counts and
// edge sums — exactly what the timing engine and the balance metrics consume
// — and never materialize per-task vertex-id lists. Construct with
// materialize=true (or use the package-level Schedule function) when the
// caller walks Task.Vertices, as the functional executor and the
// register-level pipeline do.
//
// A Scheduler is NOT safe for concurrent use, and the groups it returns are
// valid only until its next Schedule call: both are backed by the recycled
// scratch. Callers that need retention or concurrency use the pure Schedule
// function, which allocates a fresh Scheduler per call.
type Scheduler struct {
	cfg         Config
	materialize bool

	tasks     []Task
	taskPtrs  []*Task
	groups    []TaskGroup
	groupPtrs []*TaskGroup

	// Counting-sort state. counts is indexed by degree and kept
	// all-zero between calls (only the buckets a batch touched are
	// cleared, so a few huge-degree hubs don't force O(maxDegree) resets);
	// distinct collects the batch's distinct degree values.
	counts   []int32
	distinct []int32
	order    []int32 // batch sorted degree-descending

	// distSorter wraps distinct for sort.Sort; a persistent sort.Interface
	// (unlike a sort.Slice closure) keeps the hot path allocation-free.
	distSorter degreesDesc

	// Task-grouping scratch.
	sorted taskSorter
	gv, ge []float64 // per-group loads, DVS grouping
	load   []int64   // per-group edge loads, DS grouping
}

// NewScheduler returns a Scheduler for the given configuration. materialize
// selects whether scheduled tasks carry explicit vertex-id lists (see the
// type comment).
func NewScheduler(cfg Config, materialize bool) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{cfg: cfg, materialize: materialize}
	s.tasks = make([]Task, cfg.NumTasks)
	s.taskPtrs = make([]*Task, cfg.NumTasks)
	for i := range s.tasks {
		s.tasks[i].ID = i
		s.taskPtrs[i] = &s.tasks[i]
	}
	s.groups = make([]TaskGroup, cfg.NumGroups)
	s.groupPtrs = make([]*TaskGroup, cfg.NumGroups)
	for i := range s.groups {
		s.groups[i].ID = i
		s.groupPtrs[i] = &s.groups[i]
	}
	s.sorted = taskSorter{
		tasks: make([]*Task, cfg.NumTasks),
		key:   make([]float64, cfg.NumTasks),
	}
	s.gv = make([]float64, cfg.NumGroups)
	s.ge = make([]float64, cfg.NumGroups)
	s.load = make([]int64, cfg.NumGroups)
	return s, nil
}

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Schedule partitions the vertex batch into the configured task groups; see
// the package-level Schedule for the contract. The returned groups alias the
// Scheduler's recycled buffers and are invalidated by the next call.
func (s *Scheduler) Schedule(degrees []int32, batch []int32) ([]*TaskGroup, error) {
	for i := range s.tasks {
		t := &s.tasks[i]
		t.Edges = 0
		t.count = 0
		if t.Vertices != nil {
			t.Vertices = t.Vertices[:0]
		}
	}
	for i := range s.groups {
		g := &s.groups[i]
		if g.Tasks != nil {
			g.Tasks = g.Tasks[:0]
		}
	}

	switch s.cfg.Policy {
	case DegreeVertexAware, DegreeAware:
		if err := s.sortByDegreeDesc(degrees, batch); err != nil {
			return nil, err
		}
		s.binFirstFit(degrees, s.order, s.cfg.Policy == DegreeVertexAware)
	case VertexAware:
		if err := validateBatch(degrees, batch); err != nil {
			return nil, err
		}
		s.binVertexChunks(degrees, batch)
	default:
		return nil, fmt.Errorf("sched: unknown policy %v", s.cfg.Policy)
	}

	switch s.cfg.Policy {
	case DegreeVertexAware:
		s.groupVertexSorted()
	case DegreeAware:
		s.groupEdgeGreedy()
	default:
		s.groupRoundRobin()
	}
	return s.groupPtrs, nil
}

func validateBatch(degrees []int32, batch []int32) error {
	for _, v := range batch {
		if v < 0 || int(v) >= len(degrees) {
			return fmt.Errorf("sched: vertex %d outside degree table of %d", v, len(degrees))
		}
	}
	return nil
}

// sortByDegreeDesc fills s.order with batch sorted degree-descending, ties
// in batch order — the same permutation a stable comparison sort produces
// (stable-sort results are unique) — via a counting sort over the distinct
// degree values. Validation of the batch is fused into the counting pass.
func (s *Scheduler) sortByDegreeDesc(degrees []int32, batch []int32) error {
	if cap(s.order) < len(batch) {
		s.order = make([]int32, len(batch))
	}
	s.order = s.order[:len(batch)]
	s.distinct = s.distinct[:0]

	maxd := int32(-1)
	for _, v := range batch {
		if v < 0 || int(v) >= len(degrees) {
			// Restore the all-zero counts invariant before erroring.
			for _, d := range s.distinct {
				s.counts[d] = 0
			}
			return fmt.Errorf("sched: vertex %d outside degree table of %d", v, len(degrees))
		}
		d := degrees[v]
		if d > maxd {
			maxd = d
		}
		if int(d) >= len(s.counts) {
			grown := make([]int32, int(d)+1)
			copy(grown, s.counts)
			s.counts = grown
		}
		if s.counts[d] == 0 {
			s.distinct = append(s.distinct, d)
		}
		s.counts[d]++
	}
	// Descending distinct degrees give the bucket order; the values are
	// unique so an unstable sort suffices.
	s.distSorter.d = s.distinct
	sort.Sort(&s.distSorter)
	start := int32(0)
	for _, d := range s.distinct {
		c := s.counts[d]
		s.counts[d] = start
		start += c
	}
	for _, v := range batch {
		d := degrees[v]
		s.order[s.counts[d]] = v
		s.counts[d]++
	}
	for _, d := range s.distinct {
		s.counts[d] = 0
	}
	return nil
}

// place appends vertex v (degree d) to task t.
func (s *Scheduler) place(t *Task, v int32, d int64) {
	if s.materialize {
		t.Vertices = append(t.Vertices, v)
	}
	t.count++
	t.Edges += d
}

// binFirstFit is Algorithm 1's First_Fit over the degree-sorted order; see
// the package-level doc on firstFit for the algorithm rationale.
func (s *Scheduler) binFirstFit(degrees []int32, order []int32, rotate bool) {
	numTasks := s.cfg.NumTasks
	var total int64
	for _, v := range order {
		total += int64(degrees[v])
	}
	target := (total + int64(numTasks) - 1) / int64(numTasks)
	// The scan cursor rotates on every placement: plain first-fit would
	// funnel runs of equal-degree vertices (in particular the zero-degree
	// tail of redundancy-reduced workloads) into the lowest-indexed bins,
	// blowing up their vertex counts even though edges stay balanced.
	cursor := 0
	for _, v := range order {
		d := int64(degrees[v])
		placed := false
		for i := 0; i < numTasks; i++ {
			t := s.taskPtrs[(cursor+i)%numTasks]
			if t.Edges+d <= target {
				s.place(t, v, d)
				if rotate {
					cursor = (cursor + i + 1) % numTasks
				}
				placed = true
				break
			}
		}
		if !placed {
			least := s.taskPtrs[0]
			for _, t := range s.taskPtrs[1:] {
				if t.Edges < least.Edges {
					least = t
				}
			}
			s.place(least, v, d)
		}
	}
}

// binVertexChunks assigns equal vertex counts per task in batch order,
// disregarding degrees — the S+VS ablation policy.
func (s *Scheduler) binVertexChunks(degrees []int32, batch []int32) {
	numTasks := s.cfg.NumTasks
	per := (len(batch) + numTasks - 1) / numTasks
	for i, v := range batch {
		t := s.taskPtrs[min(i/max(per, 1), numTasks-1)]
		s.place(t, v, int64(degrees[v]))
	}
}

// groupVertexSorted implements Algorithm 1's second phase — combining
// edge-balanced tasks into vertex-balanced task groups with what the paper
// calls "a modified vertex-aware scheduling approach". Tasks are sorted by
// vertex count (as in the pseudocode) and then placed greedily into the
// group with the lowest combined normalized load across both dimensions,
// pairing vertex-heavy tasks with vertex-light ones while keeping the hub
// tasks that overflowed the first-fit edge target from piling into one ring.
func (s *Scheduler) groupVertexSorted() {
	var totalV, totalE float64
	for _, t := range s.taskPtrs {
		totalV += float64(t.count)
		totalE += float64(t.Edges)
	}
	numGroups := s.cfg.NumGroups
	// Per-group targets normalize the two load dimensions.
	targetV := totalV/float64(numGroups) + 1
	targetE := totalE/float64(numGroups) + 1
	// Largest-task-first in normalized size (LPT): the few hub tasks that
	// overflowed the first-fit edge target are placed while groups are
	// still empty, and the many near-target tasks then smooth both
	// dimensions.
	for _, t := range s.taskPtrs {
		sv := float64(t.count) / targetV
		se := float64(t.Edges) / targetE
		if se > sv {
			s.sorted.key[t.ID] = se
		} else {
			s.sorted.key[t.ID] = sv
		}
	}
	copy(s.sorted.tasks, s.taskPtrs)
	sort.Stable(&s.sorted)
	for i := range s.gv {
		s.gv[i] = 0
		s.ge[i] = 0
	}
	for _, t := range s.sorted.tasks {
		best, bestScore := 0, math.Inf(1)
		for i := range s.groupPtrs {
			nv := (s.gv[i] + float64(t.count)) / targetV
			ne := (s.ge[i] + float64(t.Edges)) / targetE
			// Minimize the worse of the two dimensions so neither
			// phase's balance is sacrificed; break ties on the sum.
			score := math.Max(nv, ne) + 1e-3*(nv+ne)
			if score < bestScore {
				best, bestScore = i, score
			}
		}
		g := s.groupPtrs[best]
		g.Tasks = append(g.Tasks, t)
		s.gv[best] += float64(t.count)
		s.ge[best] += float64(t.Edges)
	}
}

// groupEdgeGreedy balances only the edge dimension (largest-edges-first into
// the least-edge-loaded group): the pure degree-aware ablation policy
// (Fig. 13b, S+DS). Aggregation balance is near-perfect; vertex counts —
// and hence update utilization — are left to chance. (With 16 tasks per
// ring the vertex luck partially averages out, so our S+DS update
// utilization lands near 90 % where the paper reports 58.7 %; the direction
// of the ablation is preserved.)
func (s *Scheduler) groupEdgeGreedy() {
	for _, t := range s.taskPtrs {
		s.sorted.key[t.ID] = float64(t.Edges)
	}
	copy(s.sorted.tasks, s.taskPtrs)
	sort.Stable(&s.sorted)
	for i := range s.load {
		s.load[i] = 0
	}
	for _, t := range s.sorted.tasks {
		best := 0
		for i, l := range s.load {
			if l < s.load[best] {
				best = i
			}
		}
		g := s.groupPtrs[best]
		g.Tasks = append(g.Tasks, t)
		s.load[best] += t.Edges
	}
}

// groupRoundRobin places task i into group i % G_n without sorting — the
// grouping used by the vertex-aware ablation policy.
func (s *Scheduler) groupRoundRobin() {
	numGroups := s.cfg.NumGroups
	for i, t := range s.taskPtrs {
		g := s.groupPtrs[i%numGroups]
		g.Tasks = append(g.Tasks, t)
	}
}

// degreesDesc sorts an int32 slice descending without the closure allocation
// sort.Slice would incur per call.
type degreesDesc struct{ d []int32 }

func (x *degreesDesc) Len() int           { return len(x.d) }
func (x *degreesDesc) Less(i, j int) bool { return x.d[i] > x.d[j] }
func (x *degreesDesc) Swap(i, j int)      { x.d[i], x.d[j] = x.d[j], x.d[i] }

// taskSorter stable-sorts tasks descending by key (indexed by Task.ID)
// without allocating: stable-sort output is uniquely determined by the less
// relation, so the result is identical to sort.SliceStable over the same
// keys. Edge sums fit float64's 2^53 integer range, so float keys compare
// exactly like the int64 loads they encode.
type taskSorter struct {
	tasks []*Task
	key   []float64
}

func (ts *taskSorter) Len() int           { return len(ts.tasks) }
func (ts *taskSorter) Less(i, j int) bool { return ts.key[ts.tasks[i].ID] > ts.key[ts.tasks[j].ID] }
func (ts *taskSorter) Swap(i, j int)      { ts.tasks[i], ts.tasks[j] = ts.tasks[j], ts.tasks[i] }
