package sched

import (
	"testing"

	"scale/internal/graph"
)

// The runtime scheduling cost the §IV-B model bounds: one batch of 1024
// vertices into 512 tasks and 32 groups with Algorithm 1.
func BenchmarkScheduleDVSBatch(b *testing.B) {
	p := graph.MustByName("pubmed").Profile()
	batch := AllVertices(1024)
	cfg := Config{NumTasks: 512, NumGroups: 32, Policy: DegreeVertexAware}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(p.Degrees, batch, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleVertexAwareFullGraph(b *testing.B) {
	p := graph.MustByName("pubmed").Profile()
	all := AllVertices(p.NumVertices())
	cfg := Config{NumTasks: 512, NumGroups: 512, Policy: VertexAware}
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(p.Degrees, all, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// redditScaleProfile is a Reddit-scale synthetic workload: ~233k vertices,
// power-law skew, full Table II edge count.
func redditScaleProfile() *graph.Profile {
	return graph.SyntheticProfile("reddit-scale", 232965, 114615892, 0.8, 42)
}

// One 16K-vertex batch of the Reddit-scale profile through Algorithm 1 — the
// hot call of a full-size timing run.
func BenchmarkScheduleDVSRedditBatch(b *testing.B) {
	p := redditScaleProfile()
	batch := AllVertices(16384)
	cfg := Config{NumTasks: 512, NumGroups: 32, Policy: DegreeVertexAware}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(p.Degrees, batch, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// The whole Reddit-scale vertex set scheduled batch by batch (one full
// simulated layer's scheduling work).
func BenchmarkScheduleDVSRedditFullLayer(b *testing.B) {
	p := redditScaleProfile()
	cfg := Config{NumTasks: 512, NumGroups: 32, Policy: DegreeVertexAware}
	batches := Batches(p.NumVertices(), 16384)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, vb := range batches {
			if _, err := Schedule(p.Degrees, vb, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// The same batch through a reused compact Scheduler — the steady-state hot
// path the timing engine actually runs (counting sort + recycled scratch,
// no vertex-id materialization). Expect ~0 allocs/op.
func BenchmarkScheduleCompactRedditBatch(b *testing.B) {
	p := redditScaleProfile()
	batch := AllVertices(16384)
	s, err := NewScheduler(Config{NumTasks: 512, NumGroups: 32, Policy: DegreeVertexAware}, false)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Schedule(p.Degrees, batch); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(p.Degrees, batch); err != nil {
			b.Fatal(err)
		}
	}
}

// The full Reddit-scale layer through a reused compact Scheduler.
func BenchmarkScheduleCompactRedditFullLayer(b *testing.B) {
	p := redditScaleProfile()
	s, err := NewScheduler(Config{NumTasks: 512, NumGroups: 32, Policy: DegreeVertexAware}, false)
	if err != nil {
		b.Fatal(err)
	}
	batches := Batches(p.NumVertices(), 16384)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, vb := range batches {
			if _, err := s.Schedule(p.Degrees, vb); err != nil {
				b.Fatal(err)
			}
		}
	}
}
