package sched

import (
	"testing"

	"scale/internal/graph"
)

// The runtime scheduling cost the §IV-B model bounds: one batch of 1024
// vertices into 512 tasks and 32 groups with Algorithm 1.
func BenchmarkScheduleDVSBatch(b *testing.B) {
	p := graph.MustByName("pubmed").Profile()
	batch := AllVertices(1024)
	cfg := Config{NumTasks: 512, NumGroups: 32, Policy: DegreeVertexAware}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(p.Degrees, batch, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleVertexAwareFullGraph(b *testing.B) {
	p := graph.MustByName("pubmed").Profile()
	all := AllVertices(p.NumVertices())
	cfg := Config{NumTasks: 512, NumGroups: 512, Policy: VertexAware}
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(p.Degrees, all, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
