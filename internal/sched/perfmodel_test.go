package sched

import (
	"testing"

	"scale/internal/graph"
)

func TestSchedulingCyclesFormula(t *testing.T) {
	m := PerfModel{TOCM: 1, TReduce: 1, TComm: 1}
	// ((B + T)·log2(T) + T)·t_ocm with B=100, T=8: (108·3 + 8) = 332.
	if got := m.SchedulingCycles(100, 8); got != 332 {
		t.Fatalf("SchedulingCycles = %v, want 332", got)
	}
}

func TestAggregationCyclesFormula(t *testing.T) {
	m := PerfModel{TOCM: 1, TReduce: 1, TComm: 1}
	// B·D/T·(tr+tc)·F = 100·4/8·2·16 = 1600.
	if got := m.AggregationCycles(100, 4, 8, 16); got != 1600 {
		t.Fatalf("AggregationCycles = %v, want 1600", got)
	}
}

func TestRatioMonotoneDecreasing(t *testing.T) {
	m := DefaultPerfModel()
	prev := m.Ratio(10, 4.5, 512, 500)
	for _, b := range []int{50, 100, 500, 2000} {
		r := m.Ratio(b, 4.5, 512, 500)
		if r >= prev {
			t.Fatalf("ratio not decreasing at B=%d: %v >= %v", b, r, prev)
		}
		prev = r
	}
}

// Fig. 16(a) anchor: with the §VII-A configuration (512 PEs), every Table II
// dataset is TS-Negligible at batch size > 500 on its first layer, and the
// low-feature/low-degree regime is TS-Bound at small batches.
func TestBatch500SufficesForAllDatasets(t *testing.T) {
	m := DefaultPerfModel()
	for _, d := range graph.AllDatasets() {
		r := m.Ratio(512, d.AvgDegree, 512, d.FeatureDims[0])
		if r >= 1 {
			t.Errorf("%s: ratio at B=512 is %.2f, want < 1", d.Name, r)
		}
	}
	// PubMed (degree 4.5, features 500) must be TS-Bound at B=64:
	// this is the transition Fig. 16(a) plots.
	if r := m.Ratio(64, 4.5, 512, 500); r <= 1 {
		t.Errorf("small-batch PubMed ratio %.2f, want > 1 (TS-Bound)", r)
	}
}

func TestMinBatch(t *testing.T) {
	m := DefaultPerfModel()
	b := m.MinBatch(4.5, 512, 500, 1<<16)
	if b <= 1 || b > 1024 {
		t.Fatalf("MinBatch = %d, expected a few hundred", b)
	}
	if r := m.Ratio(b, 4.5, 512, 500); r >= 1 {
		t.Fatalf("MinBatch result not hidden: ratio %.3f", r)
	}
	if b > 1 {
		if r := m.Ratio(b-1, 4.5, 512, 500); r < 1 {
			t.Fatalf("MinBatch not minimal: B-1 ratio %.3f", r)
		}
	}
	// Infeasible case returns the cap.
	if got := m.MinBatch(0.001, 4096, 2, 4096); got != 4096 {
		t.Fatalf("infeasible MinBatch = %d, want cap", got)
	}
}

func TestZeroAggregation(t *testing.T) {
	m := DefaultPerfModel()
	if r := m.Ratio(0, 4, 8, 16); r <= 1 {
		t.Fatal("zero aggregation should be TS-bound (infinite ratio)")
	}
}
