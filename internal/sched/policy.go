package sched

import "fmt"

// Policy selects the workload-partitioning strategy.
type Policy int

const (
	// DegreeVertexAware is the paper's Algorithm 1: first-fit
	// edge-balanced tasks, then vertex-sorted modulo grouping.
	DegreeVertexAware Policy = iota
	// DegreeAware balances edges only (ablation S+DS): update-phase
	// vertex counts go unbalanced.
	DegreeAware
	// VertexAware balances vertex counts only (ablation S+VS, and the
	// FlowGNN/PowerGraph-style policy of Fig. 1a): aggregation-phase
	// edges go unbalanced.
	VertexAware
)

// String names the policy using the paper's ablation labels.
func (p Policy) String() string {
	switch p {
	case DegreeVertexAware:
		return "S+DVS"
	case DegreeAware:
		return "S+DS"
	case VertexAware:
		return "S+VS"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config parameterizes a scheduling pass. Per §IV-A, the number of tasks T_n
// equals the number of PEs and the number of task groups G_n equals the
// number of rings.
type Config struct {
	NumTasks  int
	NumGroups int
	Policy    Policy
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumTasks < 1 {
		return fmt.Errorf("sched: NumTasks = %d, need >= 1", c.NumTasks)
	}
	if c.NumGroups < 1 || c.NumGroups > c.NumTasks {
		return fmt.Errorf("sched: NumGroups = %d, need 1..NumTasks (%d)", c.NumGroups, c.NumTasks)
	}
	return nil
}

// Schedule partitions the vertex batch into NumGroups task groups holding
// NumTasks tasks in total. degrees is indexed by vertex id; batch lists the
// vertex ids to schedule (one pipeline batch of size B, §IV-A). Every vertex
// in batch appears in exactly one task, and tasks materialize their vertex-id
// lists.
//
// Schedule is a pure function building its result in fresh allocations, so
// concurrent calls need no synchronization and results may be retained
// indefinitely. Hot paths that schedule many batches under one configuration
// use a reusable Scheduler instead (usually in compact mode), which
// recycles every buffer across calls.
func Schedule(degrees []int32, batch []int32, cfg Config) ([]*TaskGroup, error) {
	s, err := NewScheduler(cfg, true)
	if err != nil {
		return nil, err
	}
	return s.Schedule(degrees, batch)
}

// firstFit is Algorithm 1's First_Fit: bins are fixed at numTasks and each
// bin targets ceil(totalEdges/numTasks) edges. We instantiate the
// unspecified vertex iteration order as degree-descending (first-fit
// decreasing, the standard bin-packing refinement): power-law hubs whose
// degree exceeds the target then land one-per-bin through the least-loaded
// fallback instead of colliding, which is what lets the wrap-around ring
// mapping (§III-B) absorb them. Retained as the test seam for the binning
// phase alone; production paths go through Scheduler.
func firstFit(degrees []int32, batch []int32, numTasks int, rotate bool) []*Task {
	s, err := NewScheduler(Config{NumTasks: numTasks, NumGroups: 1}, true)
	if err != nil {
		panic(err)
	}
	if err := s.sortByDegreeDesc(degrees, batch); err != nil {
		panic(err)
	}
	s.binFirstFit(degrees, s.order, rotate)
	return s.taskPtrs
}

// AllVertices enumerates 0..n-1 as a batch covering a whole profile. Callers
// holding a graph.Profile use its shared Vertices slice instead of
// re-materializing one.
func AllVertices(n int) []int32 {
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(i)
	}
	return vs
}

// Batches splits 0..n-1 into consecutive batches of size b (the §IV-A
// pipeline batching with batch size B).
func Batches(n, b int) [][]int32 {
	return BatchesOf(AllVertices(n), b)
}

// BatchesOf splits the vertex slice into consecutive subslices of size b
// without copying, so one backing slice (e.g. graph.Profile.Vertices) serves
// every batching granularity.
func BatchesOf(all []int32, b int) [][]int32 {
	n := len(all)
	if b < 1 {
		b = n
	}
	var out [][]int32
	for start := 0; start < n; start += b {
		end := start + b
		if end > n {
			end = n
		}
		out = append(out, all[start:end])
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
