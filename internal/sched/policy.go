package sched

import (
	"fmt"
	"math"
	"sort"
)

// Policy selects the workload-partitioning strategy.
type Policy int

const (
	// DegreeVertexAware is the paper's Algorithm 1: first-fit
	// edge-balanced tasks, then vertex-sorted modulo grouping.
	DegreeVertexAware Policy = iota
	// DegreeAware balances edges only (ablation S+DS): update-phase
	// vertex counts go unbalanced.
	DegreeAware
	// VertexAware balances vertex counts only (ablation S+VS, and the
	// FlowGNN/PowerGraph-style policy of Fig. 1a): aggregation-phase
	// edges go unbalanced.
	VertexAware
)

// String names the policy using the paper's ablation labels.
func (p Policy) String() string {
	switch p {
	case DegreeVertexAware:
		return "S+DVS"
	case DegreeAware:
		return "S+DS"
	case VertexAware:
		return "S+VS"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config parameterizes a scheduling pass. Per §IV-A, the number of tasks T_n
// equals the number of PEs and the number of task groups G_n equals the
// number of rings.
type Config struct {
	NumTasks  int
	NumGroups int
	Policy    Policy
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumTasks < 1 {
		return fmt.Errorf("sched: NumTasks = %d, need >= 1", c.NumTasks)
	}
	if c.NumGroups < 1 || c.NumGroups > c.NumTasks {
		return fmt.Errorf("sched: NumGroups = %d, need 1..NumTasks (%d)", c.NumGroups, c.NumTasks)
	}
	return nil
}

// Schedule partitions the vertex batch into NumGroups task groups holding
// NumTasks tasks in total. degrees is indexed by vertex id; batch lists the
// vertex ids to schedule (one pipeline batch of size B, §IV-A). Every vertex
// in batch appears in exactly one task.
func Schedule(degrees []int32, batch []int32, cfg Config) ([]*TaskGroup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for _, v := range batch {
		if v < 0 || int(v) >= len(degrees) {
			return nil, fmt.Errorf("sched: vertex %d outside degree table of %d", v, len(degrees))
		}
	}
	var tasks []*Task
	switch cfg.Policy {
	case DegreeVertexAware:
		tasks = firstFit(degrees, batch, cfg.NumTasks, true)
	case DegreeAware:
		// Edge-centric prior work fills bins sequentially, which is
		// precisely what leaves vertex counts unbalanced (Fig. 13b).
		tasks = firstFit(degrees, batch, cfg.NumTasks, false)
	case VertexAware:
		tasks = vertexChunks(degrees, batch, cfg.NumTasks)
	default:
		return nil, fmt.Errorf("sched: unknown policy %v", cfg.Policy)
	}
	switch cfg.Policy {
	case DegreeVertexAware:
		return groupVertexSorted(tasks, cfg.NumGroups), nil
	case DegreeAware:
		return groupEdgeGreedy(tasks, cfg.NumGroups), nil
	default:
		return groupRoundRobin(tasks, cfg.NumGroups), nil
	}
}

// firstFit is Algorithm 1's First_Fit: bins are fixed at numTasks and each
// bin targets ceil(totalEdges/numTasks) edges. We instantiate the
// unspecified vertex iteration order as degree-descending (first-fit
// decreasing, the standard bin-packing refinement): power-law hubs whose
// degree exceeds the target then land one-per-bin through the least-loaded
// fallback instead of colliding, which is what lets the wrap-around ring
// mapping (§III-B) absorb them.
func firstFit(degrees []int32, batch []int32, numTasks int, rotate bool) []*Task {
	order := make([]int32, len(batch))
	copy(order, batch)
	sort.SliceStable(order, func(i, j int) bool {
		return degrees[order[i]] > degrees[order[j]]
	})
	var total int64
	for _, v := range batch {
		total += int64(degrees[v])
	}
	target := (total + int64(numTasks) - 1) / int64(numTasks)
	tasks := make([]*Task, numTasks)
	for i := range tasks {
		tasks[i] = &Task{ID: i}
	}
	// The scan cursor rotates on every placement: plain first-fit would
	// funnel runs of equal-degree vertices (in particular the zero-degree
	// tail of redundancy-reduced workloads) into the lowest-indexed bins,
	// blowing up their vertex counts even though edges stay balanced.
	cursor := 0
	for _, v := range order {
		d := int64(degrees[v])
		placed := false
		for i := 0; i < numTasks; i++ {
			t := tasks[(cursor+i)%numTasks]
			if t.Edges+d <= target {
				t.Vertices = append(t.Vertices, v)
				t.Edges += d
				if rotate {
					cursor = (cursor + i + 1) % numTasks
				}
				placed = true
				break
			}
		}
		if !placed {
			least := tasks[0]
			for _, t := range tasks[1:] {
				if t.Edges < least.Edges {
					least = t
				}
			}
			least.Vertices = append(least.Vertices, v)
			least.Edges += d
		}
	}
	return tasks
}

// vertexChunks assigns equal vertex counts per task in batch order,
// disregarding degrees — the S+VS ablation policy.
func vertexChunks(degrees []int32, batch []int32, numTasks int) []*Task {
	tasks := make([]*Task, numTasks)
	for i := range tasks {
		tasks[i] = &Task{ID: i}
	}
	per := (len(batch) + numTasks - 1) / numTasks
	for i, v := range batch {
		t := tasks[min(i/max(per, 1), numTasks-1)]
		t.Vertices = append(t.Vertices, v)
		t.Edges += int64(degrees[v])
	}
	return tasks
}

// groupVertexSorted implements Algorithm 1's second phase — combining
// edge-balanced tasks into vertex-balanced task groups with what the paper
// calls "a modified vertex-aware scheduling approach". Tasks are sorted by
// vertex count (as in the pseudocode) and then placed greedily into the
// group with the lowest combined normalized load across both dimensions,
// pairing vertex-heavy tasks with vertex-light ones while keeping the hub
// tasks that overflowed the first-fit edge target from piling into one ring.
func groupVertexSorted(tasks []*Task, numGroups int) []*TaskGroup {
	var totalV, totalE float64
	for _, t := range tasks {
		totalV += float64(len(t.Vertices))
		totalE += float64(t.Edges)
	}
	// Per-group targets normalize the two load dimensions.
	targetV := totalV/float64(numGroups) + 1
	targetE := totalE/float64(numGroups) + 1
	// Largest-task-first in normalized size (LPT): the few hub tasks that
	// overflowed the first-fit edge target are placed while groups are
	// still empty, and the many near-target tasks then smooth both
	// dimensions.
	size := func(t *Task) float64 {
		sv := float64(len(t.Vertices)) / targetV
		se := float64(t.Edges) / targetE
		if se > sv {
			return se
		}
		return sv
	}
	sorted := make([]*Task, len(tasks))
	copy(sorted, tasks)
	sort.SliceStable(sorted, func(i, j int) bool { return size(sorted[i]) > size(sorted[j]) })
	groups := newGroups(numGroups)
	gv := make([]float64, numGroups)
	ge := make([]float64, numGroups)
	for _, t := range sorted {
		best, bestScore := 0, math.Inf(1)
		for i := range groups {
			nv := (gv[i] + float64(len(t.Vertices))) / targetV
			ne := (ge[i] + float64(t.Edges)) / targetE
			// Minimize the worse of the two dimensions so neither
			// phase's balance is sacrificed; break ties on the sum.
			score := math.Max(nv, ne) + 1e-3*(nv+ne)
			if score < bestScore {
				best, bestScore = i, score
			}
		}
		groups[best].Tasks = append(groups[best].Tasks, t)
		gv[best] += float64(len(t.Vertices))
		ge[best] += float64(t.Edges)
	}
	return groups
}

// groupEdgeGreedy balances only the edge dimension (largest-edges-first into
// the least-edge-loaded group): the pure degree-aware ablation policy
// (Fig. 13b, S+DS). Aggregation balance is near-perfect; vertex counts —
// and hence update utilization — are left to chance. (With 16 tasks per
// ring the vertex luck partially averages out, so our S+DS update
// utilization lands near 90 % where the paper reports 58.7 %; the direction
// of the ablation is preserved.)
func groupEdgeGreedy(tasks []*Task, numGroups int) []*TaskGroup {
	sorted := make([]*Task, len(tasks))
	copy(sorted, tasks)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Edges > sorted[j].Edges })
	groups := newGroups(numGroups)
	load := make([]int64, numGroups)
	for _, t := range sorted {
		best := 0
		for i, l := range load {
			if l < load[best] {
				best = i
			}
		}
		groups[best].Tasks = append(groups[best].Tasks, t)
		load[best] += t.Edges
	}
	return groups
}

// groupRoundRobin places task i into group i % G_n without sorting — the
// grouping used by the vertex-aware ablation policy.
func groupRoundRobin(tasks []*Task, numGroups int) []*TaskGroup {
	groups := newGroups(numGroups)
	for i, t := range tasks {
		g := groups[i%numGroups]
		g.Tasks = append(g.Tasks, t)
	}
	return groups
}

func newGroups(n int) []*TaskGroup {
	groups := make([]*TaskGroup, n)
	for i := range groups {
		groups[i] = &TaskGroup{ID: i}
	}
	return groups
}

// AllVertices enumerates 0..n-1 as a batch covering a whole profile.
func AllVertices(n int) []int32 {
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(i)
	}
	return vs
}

// Batches splits 0..n-1 into consecutive batches of size b (the §IV-A
// pipeline batching with batch size B).
func Batches(n, b int) [][]int32 {
	if b < 1 {
		b = n
	}
	all := AllVertices(n)
	var out [][]int32
	for start := 0; start < n; start += b {
		end := start + b
		if end > n {
			end = n
		}
		out = append(out, all[start:end])
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
