// Package mem models the memory hierarchy shared by every accelerator in the
// comparison: an HBM off-chip channel (the role Ramulator plays in the
// paper's setup, §VI), a multi-bank global buffer, and the traffic counters
// the energy model consumes (Fig. 15).
package mem

import "fmt"

// HBM is a bandwidth/latency model of the off-chip memory. The paper
// configures Ramulator as HBM with 256 GB/s; at the 1 GHz design clock that
// is 256 bytes per cycle.
type HBM struct {
	// BytesPerCycle is the sustained bandwidth (256 for the paper config).
	BytesPerCycle float64
	// BurstLatency is the fixed access latency of one burst in cycles.
	BurstLatency int64
	// BurstBytes is the transfer granularity; short transfers round up.
	BurstBytes int64
}

// DefaultHBM returns the §VI configuration: 256 GB/s @ 1 GHz, 64 B bursts,
// 100-cycle access latency.
func DefaultHBM() HBM {
	return HBM{BytesPerCycle: 256, BurstLatency: 100, BurstBytes: 64}
}

// StreamCycles returns the cycles to stream n bytes assuming full pipelining
// of bursts: one leading latency plus bandwidth-limited transfer.
func (h HBM) StreamCycles(n int64) int64 {
	if n <= 0 {
		return 0
	}
	bursts := (n + h.BurstBytes - 1) / h.BurstBytes
	transfer := float64(bursts*h.BurstBytes) / h.BytesPerCycle
	return h.BurstLatency + int64(transfer)
}

// RandomAccessCycles returns the cycles for n independent (non-streamed)
// accesses of size each — the pattern irregular graph access produces when
// no reordering is applied. Each access pays the burst latency but the
// channel overlaps them up to the bandwidth limit, so the cost is the max of
// latency-bound and bandwidth-bound time.
func (h HBM) RandomAccessCycles(n, each int64) int64 {
	if n <= 0 {
		return 0
	}
	bytes := n * roundUp(each, h.BurstBytes)
	bwBound := int64(float64(bytes) / h.BytesPerCycle)
	latBound := h.BurstLatency + n // one issue per cycle after the first latency
	if bwBound > latBound {
		return bwBound
	}
	return latBound
}

func roundUp(v, to int64) int64 {
	if to <= 0 {
		return v
	}
	return (v + to - 1) / to * to
}

// GlobalBuffer is the multi-bank on-chip SRAM holding graph data, features,
// and weights (4 MB in the §VII-A configuration).
type GlobalBuffer struct {
	CapacityBytes int64
	Banks         int
	// PortBytesPerCycle is the per-bank port width.
	PortBytesPerCycle int64
}

// DefaultGlobalBuffer returns the §VII-A configuration: 4 MB, 32 banks,
// 16 B/cycle ports.
func DefaultGlobalBuffer() GlobalBuffer {
	return GlobalBuffer{CapacityBytes: 4 << 20, Banks: 32, PortBytesPerCycle: 16}
}

// Fits reports whether a working set fits on chip.
func (g GlobalBuffer) Fits(workingSet int64) bool {
	return workingSet <= g.CapacityBytes
}

// Passes returns how many DRAM passes over `streamed` bytes a computation
// needs when its resident working set is `resident` bytes: if the resident
// set fits, one pass; otherwise the streamed data is re-fetched once per
// resident tile. This is the loop-tiling behaviour that makes ring size and
// buffer capacity interact in Fig. 14.
func (g GlobalBuffer) Passes(resident, streamed int64) int64 {
	if resident <= g.CapacityBytes {
		return 1
	}
	tiles := (resident + g.CapacityBytes - 1) / g.CapacityBytes
	return tiles
}

// ReadCycles returns the cycles to read n bytes assuming even bank striping.
func (g GlobalBuffer) ReadCycles(n int64) int64 {
	bw := int64(g.Banks) * g.PortBytesPerCycle
	if bw <= 0 {
		bw = 1
	}
	return (n + bw - 1) / bw
}

// Traffic accumulates the event counts that determine energy (Fig. 15) and
// the DRAM/global-buffer cycle costs. All byte counts are totals across the
// run; MACs count scalar multiply-accumulates.
type Traffic struct {
	DRAMReadBytes  int64
	DRAMWriteBytes int64
	GBReadBytes    int64
	GBWriteBytes   int64
	// LocalBytes counts register-file / local-buffer traffic: SCALE's
	// intermediate reuse trades GB/DRAM traffic for local traffic
	// (the 5.72× local-buffer energy in §VII-G).
	LocalReadBytes  int64
	LocalWriteBytes int64
	MACs            int64
}

// Add accumulates o into t.
func (t *Traffic) Add(o Traffic) {
	t.DRAMReadBytes += o.DRAMReadBytes
	t.DRAMWriteBytes += o.DRAMWriteBytes
	t.GBReadBytes += o.GBReadBytes
	t.GBWriteBytes += o.GBWriteBytes
	t.LocalReadBytes += o.LocalReadBytes
	t.LocalWriteBytes += o.LocalWriteBytes
	t.MACs += o.MACs
}

// DRAMBytes returns total off-chip traffic.
func (t Traffic) DRAMBytes() int64 { return t.DRAMReadBytes + t.DRAMWriteBytes }

// GBBytes returns total global-buffer traffic.
func (t Traffic) GBBytes() int64 { return t.GBReadBytes + t.GBWriteBytes }

// LocalBytes returns total local-buffer/register traffic.
func (t Traffic) LocalBytes() int64 { return t.LocalReadBytes + t.LocalWriteBytes }

// String summarizes the traffic in MB.
func (t Traffic) String() string {
	mb := func(b int64) float64 { return float64(b) / (1 << 20) }
	return fmt.Sprintf("Traffic(DRAM=%.1fMB GB=%.1fMB local=%.1fMB MACs=%d)",
		mb(t.DRAMBytes()), mb(t.GBBytes()), mb(t.LocalBytes()), t.MACs)
}
