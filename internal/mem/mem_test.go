package mem

import "testing"

func TestStreamCycles(t *testing.T) {
	h := DefaultHBM()
	if h.StreamCycles(0) != 0 {
		t.Fatal("zero bytes must cost zero")
	}
	// 256 KB at 256 B/cycle = 1024 cycles + 100 latency.
	if got := h.StreamCycles(256 << 10); got != 1124 {
		t.Fatalf("StreamCycles = %d, want 1124", got)
	}
	// Sub-burst transfers round up to one burst.
	if got := h.StreamCycles(1); got != 100+0 {
		// 64 bytes / 256 B-per-cycle = 0.25 → int64 truncates to 0.
		t.Fatalf("tiny stream = %d", got)
	}
}

func TestStreamMonotone(t *testing.T) {
	h := DefaultHBM()
	prev := int64(-1)
	for _, n := range []int64{64, 1024, 1 << 20, 1 << 28} {
		c := h.StreamCycles(n)
		if c <= prev {
			t.Fatalf("StreamCycles not monotone at %d", n)
		}
		prev = c
	}
}

func TestRandomAccessLatencyBound(t *testing.T) {
	h := DefaultHBM()
	// 1000 independent 4-byte accesses: each rounds to a 64 B burst =
	// 64000 bytes = 250 cycles bandwidth-bound, but latency-bound cost is
	// 100 + 1000 = 1100, which dominates.
	if got := h.RandomAccessCycles(1000, 4); got != 1100 {
		t.Fatalf("RandomAccessCycles = %d, want 1100", got)
	}
	// Large per-access transfers become bandwidth-bound: 1 KB accesses
	// need 4 cycles of channel time each, exceeding the 1/cycle issue rate.
	n := int64(10_000_000)
	want := int64(float64(n*1024) / 256)
	if got := h.RandomAccessCycles(n, 1024); got != want {
		t.Fatalf("bw-bound = %d, want %d", got, want)
	}
	if h.RandomAccessCycles(0, 64) != 0 {
		t.Fatal("zero accesses must be free")
	}
}

func TestRandomSlowerThanStream(t *testing.T) {
	h := DefaultHBM()
	n := int64(100_000)
	if h.RandomAccessCycles(n, 4) <= h.StreamCycles(n*4) {
		t.Fatal("random access should cost more than streaming the same bytes")
	}
}

func TestGlobalBufferFitsAndPasses(t *testing.T) {
	g := DefaultGlobalBuffer()
	if !g.Fits(4 << 20) {
		t.Fatal("4MB must fit in 4MB")
	}
	if g.Fits(4<<20 + 1) {
		t.Fatal("over-capacity must not fit")
	}
	if g.Passes(1<<20, 100<<20) != 1 {
		t.Fatal("resident-fit should need one pass")
	}
	if p := g.Passes(9<<20, 100<<20); p != 3 {
		t.Fatalf("Passes = %d, want 3 tiles", p)
	}
}

func TestGlobalBufferReadCycles(t *testing.T) {
	g := DefaultGlobalBuffer()
	// 32 banks × 16 B = 512 B/cycle.
	if got := g.ReadCycles(512 * 10); got != 10 {
		t.Fatalf("ReadCycles = %d, want 10", got)
	}
	if got := g.ReadCycles(1); got != 1 {
		t.Fatalf("ReadCycles(1) = %d, want 1", got)
	}
}

func TestTrafficAccumulation(t *testing.T) {
	var a Traffic
	a.Add(Traffic{DRAMReadBytes: 10, GBWriteBytes: 5, LocalReadBytes: 3, MACs: 7})
	a.Add(Traffic{DRAMWriteBytes: 2, GBReadBytes: 1, LocalWriteBytes: 4, MACs: 3})
	if a.DRAMBytes() != 12 || a.GBBytes() != 6 || a.LocalBytes() != 7 || a.MACs != 10 {
		t.Fatalf("accumulation wrong: %+v", a)
	}
	if a.String() == "" {
		t.Fatal("empty traffic string")
	}
}
