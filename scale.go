// Package scale is the public API of the SCALE reproduction: a
// structure-centric accelerator for message passing graph neural networks
// (Yin, Gandham, Lin, Zheng — MICRO 2024), rebuilt as a Go library.
//
// The package simulates GNN inference on the SCALE accelerator and on the
// four baseline accelerators the paper compares against (AWB-GCN, GCNAX,
// ReGNN, FlowGNN), over the Table II datasets or user-supplied graphs, and
// regenerates every table and figure of the paper's evaluation.
//
// Quick start:
//
//	sim, _ := scale.New(scale.Options{})
//	report, _ := sim.Simulate("gcn", "cora")
//	fmt.Println(report)
//
// See examples/ for runnable programs and DESIGN.md for the system design.
package scale

import (
	"fmt"
	"strings"
	"sync"

	"scale/internal/arch"
	"scale/internal/baseline"
	"scale/internal/bench"
	"scale/internal/core"
	"scale/internal/energy"
	"scale/internal/gnn"
	"scale/internal/graph"
	"scale/internal/sched"
)

// Options configures a Simulator. The zero value reproduces the paper's
// §VII-A evaluation point: a 32×16 PE array (1024 MACs), 4 MB global buffer,
// 6 KB local buffers, HBM at 256 GB/s, 1 GHz, degree and vertex-aware
// scheduling with analytically chosen batch sizes and Eq. 3 ring sizing.
type Options struct {
	// MACs selects the MAC budget: 512, 1024 (default), 2048, or 4096.
	MACs int
	// RingSize forces a fixed ring size (0 = Eq. 3 per layer).
	RingSize int
	// BatchSize forces the scheduling batch (0 = §IV-B analytical model).
	BatchSize int
	// Scheduling selects the policy: "dvs" (default, Algorithm 1),
	// "degree" (S+DS ablation), or "vertex" (S+VS ablation).
	Scheduling string
}

// Simulator runs GNN workloads through the SCALE accelerator model.
type Simulator struct {
	accel *core.SCALE

	// int8Accel is the quantized-execution twin: the same hardware
	// configuration with Precision int8, built lazily on the first int8
	// session so fp32-only processes never pay for it. A separate SCALE
	// value means a separate forward-state pool — precision tiers never
	// share scratch.
	int8Once  sync.Once
	int8Accel *core.SCALE
	int8Err   error
}

// accelFor resolves the accelerator backing the given precision.
func (s *Simulator) accelFor(p core.Precision) (*core.SCALE, error) {
	if p != core.PrecisionInt8 {
		return s.accel, nil
	}
	s.int8Once.Do(func() {
		cfg := s.accel.Config()
		cfg.Precision = core.PrecisionInt8
		s.int8Accel, s.int8Err = core.New(cfg)
	})
	return s.int8Accel, s.int8Err
}

// Precisions lists the execution precisions a Session accepts: "fp32" (the
// default — bit-identical to prior releases) and "int8" (quantized weights
// and aggregation; see the README's Precision section for the accuracy
// contract).
func Precisions() []string { return []string{"fp32", "int8"} }

// New builds a Simulator.
func New(opts Options) (*Simulator, error) {
	macs := opts.MACs
	if macs == 0 {
		macs = 1024
	}
	cfg, err := core.ConfigForMACs(macs)
	if err != nil {
		return nil, err
	}
	cfg.RingSize = opts.RingSize
	cfg.BatchSize = opts.BatchSize
	switch opts.Scheduling {
	case "", "dvs":
		cfg.Policy = sched.DegreeVertexAware
	case "degree":
		cfg.Policy = sched.DegreeAware
	case "vertex":
		cfg.Policy = sched.VertexAware
	default:
		return nil, fmt.Errorf("scale: unknown scheduling policy %q", opts.Scheduling)
	}
	accel, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Simulator{accel: accel}, nil
}

// Report summarizes one simulated run.
type Report struct {
	Accelerator string
	Model       string
	Dataset     string
	// Cycles is the end-to-end execution latency at the design clock.
	Cycles int64
	// Milliseconds is Cycles at 1 GHz.
	Milliseconds float64
	// AggUtilization and UpdateUtilization are the Fig. 13 phase means.
	AggUtilization, UpdateUtilization float64
	// EnergyMillijoules estimates total energy (Fig. 15 model).
	EnergyMillijoules float64
	// Breakdown shares of total latency (Fig. 11 categories).
	AggShare, UpdateShare, CommShare, SchedShare, MemShare float64
}

func reportOf(r *arch.Result) Report {
	e := energy.Estimate(energy.DefaultParams(), r.Traffic, r.Cycles)
	total := float64(r.Cycles)
	if total == 0 {
		total = 1
	}
	return Report{
		Accelerator:       r.Accelerator,
		Model:             r.Model,
		Dataset:           r.Dataset,
		Cycles:            r.Cycles,
		Milliseconds:      float64(r.Cycles) / 1e6,
		AggUtilization:    r.AggUtil,
		UpdateUtilization: r.UpdateUtil,
		EnergyMillijoules: e.Total() / 1e9, // pJ → mJ
		AggShare:          float64(r.Breakdown.Agg) / total,
		UpdateShare:       float64(r.Breakdown.Update) / total,
		CommShare:         float64(r.Breakdown.ExposedComm) / total,
		SchedShare:        float64(r.Breakdown.Sched) / total,
		MemShare:          float64(r.Breakdown.MemStall) / total,
	}
}

// String renders the report in one line.
func (r Report) String() string {
	return fmt.Sprintf("%s %s/%s: %d cycles (%.3f ms), util agg=%.1f%% upd=%.1f%%, %.2f mJ",
		r.Accelerator, r.Model, r.Dataset, r.Cycles, r.Milliseconds,
		100*r.AggUtilization, 100*r.UpdateUtilization, r.EnergyMillijoules)
}

// Models lists the supported GNN models: gcn, ggcn, gs-pl, gin, gat.
func Models() []string { return gnn.AllModelNames() }

// Datasets lists the Table II datasets: cora, citeseer, pubmed, nell, reddit.
func Datasets() []string { return graph.DatasetNames() }

// Simulate runs the named model on the named Table II dataset (full-size
// structure profile, per-layer Table II feature lengths).
func (s *Simulator) Simulate(model, dataset string) (Report, error) {
	d, err := graph.ByName(dataset)
	if err != nil {
		return Report{}, err
	}
	m, err := gnn.NewModel(model, d.FeatureDims, 1)
	if err != nil {
		return Report{}, err
	}
	r, err := s.accel.Run(m, d.Profile())
	if err != nil {
		return Report{}, err
	}
	return reportOf(r), nil
}

// SimulateOn is Simulate on a named accelerator: "scale" (or "") selects
// the SCALE model this Simulator was configured with; any backend name
// internal/baseline knows ("awb-gcn", "gcnax", "regnn", "flowgnn", "i-gcn",
// "systolic", case-insensitive) selects that backend at the Simulator's MAC
// budget. Unknown names are typed input errors.
func (s *Simulator) SimulateOn(accel, model, dataset string) (Report, error) {
	if accel == "" || strings.EqualFold(accel, "scale") {
		return s.Simulate(model, dataset)
	}
	d, err := graph.ByName(dataset)
	if err != nil {
		return Report{}, err
	}
	m, err := gnn.NewModel(model, d.FeatureDims, 1)
	if err != nil {
		return Report{}, err
	}
	b, err := baseline.ByName(accel, s.accel.MACs())
	if err != nil {
		return Report{}, err
	}
	r, err := b.Run(m, d.Profile())
	if err != nil {
		return Report{}, err
	}
	return reportOf(r), nil
}

// Accelerators lists the names SimulateOn accepts: SCALE plus every
// backend in internal/baseline.
func Accelerators() []string {
	names := []string{"SCALE"}
	for _, b := range baseline.All(1024) {
		names = append(names, b.Name())
	}
	return append(names, "I-GCN")
}

// LayerTraceInfo summarizes one layer's execution trace: the chosen ring
// configuration, batch size, and how evenly the scheduling batches ran.
type LayerTraceInfo struct {
	Layer         int
	RingSize      int
	NumRings      int
	BatchSize     int
	NumBatches    int
	BatchEvenness float64 // mean/max batch makespan; 1 = perfectly even
}

// SimulateTraced is Simulate with per-layer execution traces.
func (s *Simulator) SimulateTraced(model, dataset string) (Report, []LayerTraceInfo, error) {
	d, err := graph.ByName(dataset)
	if err != nil {
		return Report{}, nil, err
	}
	m, err := gnn.NewModel(model, d.FeatureDims, 1)
	if err != nil {
		return Report{}, nil, err
	}
	r, trace, err := s.accel.RunTraced(m, d.Profile())
	if err != nil {
		return Report{}, nil, err
	}
	infos := make([]LayerTraceInfo, 0, len(trace.Layers))
	for _, lt := range trace.Layers {
		infos = append(infos, LayerTraceInfo{
			Layer:         lt.Layer,
			RingSize:      lt.RingSize,
			NumRings:      lt.NumRings,
			BatchSize:     lt.Batch,
			NumBatches:    len(lt.Batches),
			BatchEvenness: lt.BalanceAgg(),
		})
	}
	return reportOf(r), infos, nil
}

// SimulateGraph runs the named model with the given feature-length chain
// over a custom degree sequence (degrees[v] = in-degree of vertex v).
func (s *Simulator) SimulateGraph(model string, dims []int, name string, degrees []int32) (Report, error) {
	m, err := gnn.NewModel(model, dims, 1)
	if err != nil {
		return Report{}, err
	}
	r, err := s.accel.Run(m, graph.NewProfile(name, degrees))
	if err != nil {
		return Report{}, err
	}
	return reportOf(r), nil
}

// Compare runs the model/dataset pair on SCALE and on every baseline that
// supports the model, returning reports keyed by accelerator name.
func Compare(model, dataset string) (map[string]Report, error) {
	s := bench.NewSuite()
	cell, err := s.RunCell(model, dataset)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Report, len(cell))
	for name, r := range cell {
		out[name] = reportOf(r)
	}
	return out, nil
}

// Infer performs functional inference: it executes the model over an
// explicit edge list using the SCALE dataflow (scheduled reduce chains and
// per-vertex updates) and returns the final-layer vertex embeddings. Edges
// are directed src→dst aggregation edges; features is row-major |V|×dims[0].
//
// Infer builds the model from scratch on every call. Callers issuing
// repeated requests with the same (model, dims) should hold a Session
// instead — same results, without the per-call construction cost.
func (s *Simulator) Infer(model string, dims []int, numVertices int, edges [][2]int, features [][]float32) ([][]float32, error) {
	sess, err := s.NewSession(model, dims)
	if err != nil {
		return nil, err
	}
	return sess.Infer(numVertices, edges, features)
}

// Experiment regenerates one of the paper's tables or figures by id
// (table1, fig1a..fig1c, fig10, fig11, table3, fig12, fig13a, fig13b,
// fig14, fig15, fig16a, fig16b) and returns the rendered ASCII table.
func Experiment(id string) (string, error) {
	e, err := bench.ByID(id)
	if err != nil {
		return "", err
	}
	t, err := e.Run(bench.NewSuite())
	if err != nil {
		return "", err
	}
	return t.Render(), nil
}

// ExperimentIDs lists the regenerable experiments in paper order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range bench.Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}
